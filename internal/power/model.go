// Package power implements the energy model of the paper: DVFS-style
// speed-dependent server power, per-station and cluster average power under
// a given utilization, and per-request / per-class end-to-end energy.
//
// The canonical model is the frequency power law
//
//	P_busy(s) = P_idle + κ·sᵞ        (γ ≈ 2–3 for CMOS dynamic power)
//
// where s is the server speed in work units per time. A server that is busy
// a fraction ρ of the time draws average power
//
//	P̄(s, ρ) = P_idle + κ·sᵞ·ρ.
package power

import (
	"fmt"
	"math"
)

// Model maps a server speed to its power draw.
type Model interface {
	// IdlePower returns the power drawn by an idle server at speed s.
	// Most DVFS models make idle power speed-independent, but interfaces
	// receive s so leakage-dependent models can use it.
	IdlePower(s float64) float64
	// BusyPower returns the power drawn by a server at speed s while
	// serving a request.
	BusyPower(s float64) float64
	// String names the model for diagnostics.
	String() string
}

// PowerLaw is the standard DVFS power model P_busy = Idle + Kappa·s^Gamma
// with speed-independent idle power.
type PowerLaw struct {
	Idle  float64 // static/leakage power, watts
	Kappa float64 // dynamic power coefficient
	Gamma float64 // frequency exponent, typically in [2, 3]
}

// NewPowerLaw validates and returns the model.
func NewPowerLaw(idle, kappa, gamma float64) (PowerLaw, error) {
	if idle < 0 || kappa < 0 {
		return PowerLaw{}, fmt.Errorf("power: negative coefficients idle=%g kappa=%g", idle, kappa)
	}
	if !(gamma >= 1) {
		return PowerLaw{}, fmt.Errorf("power: exponent γ=%g must be ≥ 1 for a convex speed-power curve", gamma)
	}
	return PowerLaw{Idle: idle, Kappa: kappa, Gamma: gamma}, nil
}

// IdlePower implements Model.
func (m PowerLaw) IdlePower(float64) float64 { return m.Idle }

// BusyPower implements Model.
func (m PowerLaw) BusyPower(s float64) float64 {
	return m.Idle + m.Kappa*math.Pow(s, m.Gamma)
}

// DynamicPower returns only the speed-dependent component κ·sᵞ.
func (m PowerLaw) DynamicPower(s float64) float64 {
	return m.Kappa * math.Pow(s, m.Gamma)
}

func (m PowerLaw) String() string {
	return fmt.Sprintf("PowerLaw(idle=%gW, κ=%g, γ=%g)", m.Idle, m.Kappa, m.Gamma)
}

// Linear is an affine power model P_busy = Idle + Slope·s, the γ=1 limiting
// case sometimes used for I/O-bound tiers where voltage cannot scale.
type Linear struct {
	Idle  float64
	Slope float64
}

// IdlePower implements Model.
func (m Linear) IdlePower(float64) float64 { return m.Idle }

// BusyPower implements Model.
func (m Linear) BusyPower(s float64) float64 { return m.Idle + m.Slope*s }

func (m Linear) String() string {
	return fmt.Sprintf("Linear(idle=%gW, slope=%g)", m.Idle, m.Slope)
}

// Table is a discrete-DVFS model: measured (speed, busy power) points with
// linear interpolation between them and a flat idle power. Speeds must be
// strictly increasing. Queries outside the table clamp to the end points.
type Table struct {
	IdleW  float64
	Speeds []float64
	BusyW  []float64
}

// NewTable validates and returns a table model.
func NewTable(idle float64, speeds, busy []float64) (*Table, error) {
	if len(speeds) == 0 || len(speeds) != len(busy) {
		return nil, fmt.Errorf("power: table needs matching non-empty speed/power lists (%d vs %d)", len(speeds), len(busy))
	}
	for i := range speeds {
		if !(speeds[i] > 0) || busy[i] < 0 {
			return nil, fmt.Errorf("power: table point %d invalid (s=%g, p=%g)", i, speeds[i], busy[i])
		}
		if i > 0 && speeds[i] <= speeds[i-1] {
			return nil, fmt.Errorf("power: table speeds not strictly increasing at %d", i)
		}
	}
	if idle < 0 {
		return nil, fmt.Errorf("power: negative idle power %g", idle)
	}
	return &Table{IdleW: idle, Speeds: append([]float64(nil), speeds...), BusyW: append([]float64(nil), busy...)}, nil
}

// IdlePower implements Model.
func (t *Table) IdlePower(float64) float64 { return t.IdleW }

// BusyPower implements Model by interpolating the table.
func (t *Table) BusyPower(s float64) float64 {
	n := len(t.Speeds)
	if s <= t.Speeds[0] {
		return t.BusyW[0]
	}
	if s >= t.Speeds[n-1] {
		return t.BusyW[n-1]
	}
	// Binary search for the bracketing segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if t.Speeds[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (s - t.Speeds[lo]) / (t.Speeds[hi] - t.Speeds[lo])
	return t.BusyW[lo] + f*(t.BusyW[hi]-t.BusyW[lo])
}

func (t *Table) String() string {
	return fmt.Sprintf("Table(%d points, idle=%gW)", len(t.Speeds), t.IdleW)
}
