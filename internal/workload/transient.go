// Time-varying workload builders: the transient scenarios the online
// autoscaler (internal/control, experiment E23) is exercised against. Each
// builder maps a cluster's per-class nominal rates onto sim.Profile shapes —
// a diurnal ramp, a flash crowd, a repeating multi-period staircase — so the
// scenario scales with the cluster it is applied to instead of hard-coding
// rates.
package workload

import (
	"fmt"

	"clusterq/internal/cluster"
	"clusterq/internal/sim"
)

// DiurnalProfiles builds one sinusoid per class around the class's nominal
// rate: λ_k(t) = λ_k·(1 + swing·sin(2πt/period)). swing must be in [0, 1)
// (rates stay positive) and period positive. The peak rate is λ_k·(1+swing).
func DiurnalProfiles(c *cluster.Cluster, swing, period float64) ([]sim.Profile, error) {
	if !(swing >= 0 && swing < 1) {
		return nil, fmt.Errorf("workload: diurnal swing %g out of [0, 1)", swing)
	}
	profiles := make([]sim.Profile, len(c.Classes))
	for k, cl := range c.Classes {
		p, err := sim.NewSinusoid(cl.Lambda, swing*cl.Lambda, period)
		if err != nil {
			return nil, fmt.Errorf("workload: class %d diurnal profile: %w", k, err)
		}
		profiles[k] = p
	}
	return profiles, nil
}

// FlashCrowdProfiles builds a flash-crowd schedule per class: the nominal
// rate, a burst of mult× the nominal on [start, start+duration), then the
// nominal again. mult must be ≥ 1 (the peak factor), start ≥ 0 and duration
// positive.
func FlashCrowdProfiles(c *cluster.Cluster, mult, start, duration float64) ([]sim.Profile, error) {
	if !(mult >= 1) {
		return nil, fmt.Errorf("workload: flash-crowd multiplier %g must be at least 1", mult)
	}
	if start < 0 || !(duration > 0) {
		return nil, fmt.Errorf("workload: flash-crowd window [%g, %g+%g) invalid", start, start, duration)
	}
	profiles := make([]sim.Profile, len(c.Classes))
	for k, cl := range c.Classes {
		times := []float64{0, start, start + duration}
		rates := []float64{cl.Lambda, mult * cl.Lambda, cl.Lambda}
		if start == 0 {
			// The crowd is already there at t=0.
			times, rates = times[1:], rates[1:]
			times[0] = 0
		}
		p, err := sim.NewSchedule(times, rates, 0)
		if err != nil {
			return nil, fmt.Errorf("workload: class %d flash-crowd profile: %w", k, err)
		}
		profiles[k] = p
	}
	return profiles, nil
}

// StaircaseProfiles builds a cycling multi-period rate schedule per class:
// the cycle of span `period` is split evenly across factors, class k running
// at factors[i]·λ_k during segment i. Factors must be positive; the peak
// rate is max(factors)·λ_k.
func StaircaseProfiles(c *cluster.Cluster, factors []float64, period float64) ([]sim.Profile, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("workload: staircase needs at least one factor")
	}
	if !(period > 0) {
		return nil, fmt.Errorf("workload: staircase period %g must be positive", period)
	}
	for i, f := range factors {
		if !(f > 0) {
			return nil, fmt.Errorf("workload: staircase factor %d is %g, must be positive", i, f)
		}
	}
	seg := period / float64(len(factors))
	profiles := make([]sim.Profile, len(c.Classes))
	for k, cl := range c.Classes {
		times := make([]float64, len(factors))
		rates := make([]float64, len(factors))
		for i, f := range factors {
			times[i] = float64(i) * seg
			rates[i] = f * cl.Lambda
		}
		p, err := sim.NewSchedule(times, rates, period)
		if err != nil {
			return nil, fmt.Errorf("workload: class %d staircase profile: %w", k, err)
		}
		profiles[k] = p
	}
	return profiles, nil
}

// PeakFactor returns the largest instantaneous-rate multiple a profile list
// reaches relative to the cluster's nominal rates — the factor a
// provision-for-peak static plan must be solved at. Classes with a zero
// nominal rate are skipped.
func PeakFactor(c *cluster.Cluster, profiles []sim.Profile) float64 {
	peak := 1.0
	for k, p := range profiles {
		if p == nil || k >= len(c.Classes) || !(c.Classes[k].Lambda > 0) {
			continue
		}
		if f := p.MaxRate() / c.Classes[k].Lambda; f > peak {
			peak = f
		}
	}
	return peak
}
