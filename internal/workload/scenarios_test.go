package workload

import (
	"math"
	"testing"

	"clusterq/internal/cluster"
)

func TestEnterprise3TierValidAndStable(t *testing.T) {
	c := Enterprise3Tier(1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := cluster.Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Stable() {
		t.Fatal("default scenario unstable")
	}
	// Priority ordering built in.
	if !(m.Delay[0] < m.Delay[1] && m.Delay[1] < m.Delay[2]) {
		t.Errorf("delays not ordered: %v", m.Delay)
	}
	// Moderate load: bottleneck between 0.4 and 0.85.
	u, _ := c.Network().BottleneckUtilization(c.Lambdas())
	if u < 0.4 || u > 0.85 {
		t.Errorf("default bottleneck utilization = %g", u)
	}
	// SLAs are coherent: they hold at maximum speeds.
	_, hi := c.SpeedBounds()
	if err := c.SetSpeeds(hi); err != nil {
		t.Fatal(err)
	}
	m2, _ := cluster.Evaluate(c)
	reports, _ := cluster.CheckSLAs(c, m2)
	for _, r := range reports {
		if !r.Satisfied() {
			t.Errorf("SLA unreachable even at max speed: %+v", r)
		}
	}
}

func TestEnterprise3TierLoadFactor(t *testing.T) {
	light := Enterprise3Tier(0.5)
	heavy := Enterprise3Tier(1.4)
	ml, err := cluster.Evaluate(light)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := cluster.Evaluate(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if !(mh.WeightedDelay > ml.WeightedDelay) {
		t.Errorf("heavier load should be slower: %g vs %g", mh.WeightedDelay, ml.WeightedDelay)
	}
	// Degenerate factor defaults to 1.
	if Enterprise3Tier(0).Classes[0].Lambda != Enterprise3Tier(1).Classes[0].Lambda {
		t.Error("zero load factor should default to 1")
	}
}

func TestScalableShapes(t *testing.T) {
	for _, tc := range []struct{ j, k int }{{1, 1}, {2, 3}, {5, 4}, {8, 6}} {
		c := Scalable(tc.j, tc.k, 1)
		if len(c.Tiers) != tc.j || len(c.Classes) != tc.k {
			t.Fatalf("shape %dx%d came out %dx%d", tc.j, tc.k, len(c.Tiers), len(c.Classes))
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%dx%d: %v", tc.j, tc.k, err)
		}
		m, err := cluster.Evaluate(c)
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.j, tc.k, err)
		}
		if !m.Stable() {
			t.Errorf("%dx%d unstable at load 1", tc.j, tc.k)
		}
		// Load calibration: bottleneck utilization ≈ 0.6.
		u, _ := c.Network().BottleneckUtilization(c.Lambdas())
		if math.Abs(u-0.6) > 0.05 {
			t.Errorf("%dx%d bottleneck utilization = %g, want ≈0.6", tc.j, tc.k, u)
		}
	}
}

func TestScalablePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Scalable(0, 1, 1)
}

func TestScaleArrivals(t *testing.T) {
	c := Enterprise3Tier(1)
	s := ScaleArrivals(c, 2)
	for i := range c.Classes {
		if s.Classes[i].Lambda != 2*c.Classes[i].Lambda {
			t.Errorf("class %d not scaled", i)
		}
	}
	// Original untouched.
	if c.Classes[0].Lambda != 0.9 {
		t.Error("original mutated")
	}
}

func TestCapacityFraction(t *testing.T) {
	c := Enterprise3Tier(1)
	for _, frac := range []float64{0.3, 0.6, 0.9} {
		s := CapacityFraction(c, frac)
		u, _ := s.Network().BottleneckUtilization(s.Lambdas())
		if math.Abs(u-frac) > 1e-9 {
			t.Errorf("frac %g: utilization %g", frac, u)
		}
	}
}

func TestLoadSweep(t *testing.T) {
	c := Enterprise3Tier(1)
	sweep := LoadSweep(c, []float64{0.3, 0.5, 0.7})
	if len(sweep) != 3 {
		t.Fatal("wrong sweep length")
	}
	prev := 0.0
	for _, s := range sweep {
		u, _ := s.Network().BottleneckUtilization(s.Lambdas())
		if u <= prev {
			t.Error("sweep not increasing")
		}
		prev = u
	}
}
