// Package workload constructs the named scenarios the experiments and
// examples run on: the canonical three-tier enterprise application with
// gold/silver/bronze customer classes, and scalable J-tier/K-class variants
// for the solver-efficiency experiments. Parameter values are typical of the
// SLA-based cluster-allocation literature (the paper's own tables are not
// available; see DESIGN.md).
package workload

import (
	"fmt"

	"clusterq/internal/cluster"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

// Enterprise3Tier builds the canonical scenario: a web → app → db pipeline
// hosting three priority classes (gold, silver, bronze). loadFactor scales
// all arrival rates; 1.0 gives a moderately loaded system (~65% at the
// bottleneck with default speeds), values toward 1.5 approach saturation at
// the default speed of 4.
func Enterprise3Tier(loadFactor float64) *cluster.Cluster {
	if loadFactor <= 0 {
		loadFactor = 1
	}
	mustPL := func(idle, kappa, gamma float64) power.Model {
		m, err := power.NewPowerLaw(idle, kappa, gamma)
		if err != nil {
			panic(fmt.Sprintf("workload: bad power model: %v", err))
		}
		return m
	}
	web := &cluster.Tier{
		Name: "web", Servers: 2, Speed: 4, MinSpeed: 1, MaxSpeed: 8,
		Discipline: queueing.NonPreemptive,
		Power:      mustPL(90, 0.35, 3), CostPerServer: 1,
		Demands: []queueing.Demand{
			{Work: 0.6, CV2: 1}, {Work: 0.8, CV2: 1}, {Work: 1.0, CV2: 1},
		},
	}
	app := &cluster.Tier{
		Name: "app", Servers: 2, Speed: 4, MinSpeed: 1, MaxSpeed: 8,
		Discipline: queueing.NonPreemptive,
		Power:      mustPL(110, 0.40, 3), CostPerServer: 2,
		Demands: []queueing.Demand{
			{Work: 1.0, CV2: 1}, {Work: 1.3, CV2: 1}, {Work: 1.6, CV2: 1},
		},
	}
	db := &cluster.Tier{
		Name: "db", Servers: 2, Speed: 4, MinSpeed: 1, MaxSpeed: 8,
		Discipline: queueing.NonPreemptive,
		Power:      mustPL(130, 0.50, 3), CostPerServer: 4,
		// Database work is more variable (mixed point/range queries).
		Demands: []queueing.Demand{
			{Work: 0.8, CV2: 2}, {Work: 1.2, CV2: 2}, {Work: 2.0, CV2: 2},
		},
	}
	return &cluster.Cluster{
		Tiers: []*cluster.Tier{web, app, db},
		Classes: []cluster.Class{
			{Name: "gold", Lambda: 0.9 * loadFactor,
				SLA: cluster.SLA{MaxMeanDelay: 1.6, PricePerRequest: 5}},
			{Name: "silver", Lambda: 1.2 * loadFactor,
				SLA: cluster.SLA{MaxMeanDelay: 3.0, PricePerRequest: 2}},
			{Name: "bronze", Lambda: 1.5 * loadFactor,
				SLA: cluster.SLA{MaxMeanDelay: 6.0, PricePerRequest: 1}},
		},
	}
}

// Enterprise3TierHeavyDB is the asymmetric variant of the canonical scenario
// used by the optimization-frontier experiments: the database tier carries
// double work but has DVFS headroom (MaxSpeed 24 against 8 elsewhere). On a
// symmetric cluster the optimal speed allocation IS uniform and the paper's
// optimizer coincides with the naive single-knob baseline; asymmetry is where
// per-tier optimization earns its keep.
func Enterprise3TierHeavyDB(loadFactor float64) *cluster.Cluster {
	c := Enterprise3Tier(loadFactor)
	db := c.Tiers[2]
	for k := range db.Demands {
		db.Demands[k].Work *= 2
	}
	db.MaxSpeed = 24
	db.Speed = 8
	return c
}

// Scalable builds a symmetric cluster with j tiers and k classes for the
// solver-efficiency experiments: identical tiers, class demand factors spread
// linearly from 0.8 to 1.4, per-class arrival rates chosen so the bottleneck
// utilization at default speeds is about 0.6·loadFactor.
func Scalable(j, k int, loadFactor float64) *cluster.Cluster {
	if j < 1 || k < 1 {
		panic(fmt.Sprintf("workload: invalid scalable shape %d×%d", j, k))
	}
	if loadFactor <= 0 {
		loadFactor = 1
	}
	pm, err := power.NewPowerLaw(100, 0.4, 3)
	if err != nil {
		panic(err)
	}
	demands := make([]queueing.Demand, k)
	var totalWork float64
	for i := range demands {
		f := 0.8
		if k > 1 {
			f = 0.8 + 0.6*float64(i)/float64(k-1)
		}
		demands[i] = queueing.Demand{Work: f, CV2: 1}
		totalWork += f
	}
	const defaultSpeed, servers = 4.0, 2
	// Per-class λ equalized so Σ λ·work = 0.6·loadFactor·capacity.
	lam := 0.6 * loadFactor * defaultSpeed * servers / totalWork

	tiers := make([]*cluster.Tier, j)
	for i := range tiers {
		tiers[i] = &cluster.Tier{
			Name: fmt.Sprintf("tier%d", i), Servers: servers, Speed: defaultSpeed,
			MinSpeed: 1, MaxSpeed: 8,
			Discipline: queueing.NonPreemptive, Power: pm, CostPerServer: 1 + float64(i),
			Demands: append([]queueing.Demand(nil), demands...),
		}
	}
	classes := make([]cluster.Class, k)
	for i := range classes {
		classes[i] = cluster.Class{
			Name:   fmt.Sprintf("class%d", i),
			Lambda: lam,
			SLA:    cluster.SLA{MaxMeanDelay: 2 * float64(i+1), PricePerRequest: float64(k - i)},
		}
	}
	return &cluster.Cluster{Tiers: tiers, Classes: classes}
}

// ScaleArrivals returns a clone with every class's arrival rate multiplied
// by f.
func ScaleArrivals(c *cluster.Cluster, f float64) *cluster.Cluster {
	out := c.Clone()
	for i := range out.Classes {
		out.Classes[i].Lambda *= f
	}
	return out
}

// CapacityFraction returns the clone of c loaded to the given fraction of its
// bottleneck capacity at current speeds: it rescales arrival rates so the
// bottleneck utilization equals frac.
func CapacityFraction(c *cluster.Cluster, frac float64) *cluster.Cluster {
	u, _ := c.Network().BottleneckUtilization(c.Lambdas())
	if u <= 0 {
		return c.Clone()
	}
	return ScaleArrivals(c, frac/u)
}

// LoadSweep returns clones of c at each bottleneck-utilization fraction.
func LoadSweep(c *cluster.Cluster, fracs []float64) []*cluster.Cluster {
	out := make([]*cluster.Cluster, len(fracs))
	for i, f := range fracs {
		out[i] = CapacityFraction(c, f)
	}
	return out
}
