package workload

import (
	"math"
	"testing"

	"clusterq/internal/sim"
)

func TestDiurnalProfiles(t *testing.T) {
	c := Enterprise3Tier(1)
	if _, err := DiurnalProfiles(c, 1.0, 100); err == nil {
		t.Error("swing 1.0 accepted (rates would touch zero)")
	}
	if _, err := DiurnalProfiles(c, -0.1, 100); err == nil {
		t.Error("negative swing accepted")
	}
	ps, err := DiurnalProfiles(c, 0.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(c.Classes) {
		t.Fatalf("got %d profiles for %d classes", len(ps), len(c.Classes))
	}
	for k, p := range ps {
		lam := c.Classes[k].Lambda
		if got := p.MaxRate(); math.Abs(got-1.5*lam) > 1e-9 {
			t.Errorf("class %d peak %g, want %g", k, got, 1.5*lam)
		}
		if got := p.RateAt(250); math.Abs(got-1.5*lam) > 1e-9 {
			t.Errorf("class %d quarter-period rate %g, want peak %g", k, got, 1.5*lam)
		}
	}
}

func TestFlashCrowdProfiles(t *testing.T) {
	c := Enterprise3Tier(1)
	if _, err := FlashCrowdProfiles(c, 0.5, 10, 10); err == nil {
		t.Error("sub-1 multiplier accepted")
	}
	if _, err := FlashCrowdProfiles(c, 2, -1, 10); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := FlashCrowdProfiles(c, 2, 10, 0); err == nil {
		t.Error("zero duration accepted")
	}
	ps, err := FlashCrowdProfiles(c, 3, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	lam := c.Classes[0].Lambda
	p := ps[0]
	for _, tc := range []struct{ t, want float64 }{
		{50, lam}, {100, 3 * lam}, {149, 3 * lam}, {150, lam}, {1e4, lam},
	} {
		if got := p.RateAt(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("RateAt(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	// The crowd already present at t=0 degenerates to a two-segment shape.
	ps, err = FlashCrowdProfiles(c, 2, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := ps[0].RateAt(0); math.Abs(got-2*lam) > 1e-12 {
		t.Errorf("t=0 crowd RateAt(0) = %g, want %g", got, 2*lam)
	}
	if got := ps[0].RateAt(31); math.Abs(got-lam) > 1e-12 {
		t.Errorf("t=0 crowd RateAt(31) = %g, want %g", got, lam)
	}
}

func TestStaircaseProfiles(t *testing.T) {
	c := Enterprise3Tier(1)
	if _, err := StaircaseProfiles(c, nil, 100); err == nil {
		t.Error("empty factors accepted")
	}
	if _, err := StaircaseProfiles(c, []float64{1, 0}, 100); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := StaircaseProfiles(c, []float64{1}, 0); err == nil {
		t.Error("zero period accepted")
	}
	ps, err := StaircaseProfiles(c, []float64{0.5, 1.5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	lam := c.Classes[0].Lambda
	p := ps[0]
	for _, tc := range []struct{ t, want float64 }{
		{0, 0.5 * lam}, {49, 0.5 * lam}, {50, 1.5 * lam}, {125, 0.5 * lam},
	} {
		if got := p.RateAt(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("RateAt(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestPeakFactor(t *testing.T) {
	c := Enterprise3Tier(1)
	ps, err := StaircaseProfiles(c, []float64{0.5, 1.4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := PeakFactor(c, ps); math.Abs(got-1.4) > 1e-9 {
		t.Errorf("staircase peak factor = %g, want 1.4", got)
	}
	// All profiles below nominal: the factor floors at 1 (a static plan is
	// never provisioned below the nominal rates).
	low, err := StaircaseProfiles(c, []float64{0.5, 0.7}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := PeakFactor(c, low); got != 1 {
		t.Errorf("sub-nominal peak factor = %g, want 1", got)
	}
	// Nil entries are skipped.
	if got := PeakFactor(c, make([]sim.Profile, len(c.Classes))); got != 1 {
		t.Errorf("nil-profile peak factor = %g, want 1", got)
	}
}
