// Quickstart: build a small two-tier cluster by hand, compute the paper's C1
// quantities (per-class end-to-end delay and energy), and cross-check them
// with a short simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clusterq"
)

func main() {
	// Power model: 80 W idle, cubic DVFS dynamic power.
	pm, err := clusterq.NewPowerLaw(80, 0.5, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Two tiers: a 2-server frontend and a single-server backend, both
	// DVFS-capable between speeds 1 and 8 (work units per second).
	frontend := &clusterq.Tier{
		Name: "frontend", Servers: 2, Speed: 4, MinSpeed: 1, MaxSpeed: 8,
		Discipline: clusterq.NonPreemptive, Power: pm, CostPerServer: 1,
		Demands: []clusterq.Demand{
			{Work: 0.8, CV2: 1}, // premium requests are lighter here
			{Work: 1.0, CV2: 1},
		},
	}
	backend := &clusterq.Tier{
		Name: "backend", Servers: 1, Speed: 4, MinSpeed: 1, MaxSpeed: 8,
		Discipline: clusterq.NonPreemptive, Power: pm, CostPerServer: 3,
		Demands: []clusterq.Demand{
			{Work: 1.0, CV2: 2}, // variable backend work
			{Work: 1.5, CV2: 2},
		},
	}

	// Two customer classes; index 0 is served first everywhere.
	c := &clusterq.Cluster{
		Tiers: []*clusterq.Tier{frontend, backend},
		Classes: []clusterq.Class{
			{Name: "premium", Lambda: 0.8, SLA: clusterq.SLA{MaxMeanDelay: 1.5, PricePerRequest: 4}},
			{Name: "standard", Lambda: 1.0, SLA: clusterq.SLA{MaxMeanDelay: 4.0, PricePerRequest: 1}},
		},
	}

	// C1: analytical delays and energy.
	m, err := clusterq.Evaluate(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analytical model:")
	for k, cl := range c.Classes {
		fmt.Printf("  %-9s mean end-to-end delay %.3f s, energy/request %.1f J\n",
			cl.Name, m.Delay[k], m.EnergyPerRequest[k])
	}
	fmt.Printf("  cluster average power %.1f W (static %.1f + dynamic %.1f)\n",
		m.TotalPower, m.StaticPower, m.DynamicPower)

	// Tail estimate for the premium class.
	p95, err := clusterq.DelayQuantile(c, m, 0, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  premium p95 delay ≈ %.3f s (hypoexponential approximation)\n\n", p95)

	// C5: validate with the discrete-event simulator.
	res, err := clusterq.Simulate(c, clusterq.SimOptions{
		Horizon: 20000, Replications: 3, Seed: 7, Quantiles: []float64{0.95},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulation check:")
	for k, cl := range c.Classes {
		fmt.Printf("  %-9s sim delay %.3f ±%.3f s (model error %.1f%%), sim p95 %.3f s\n",
			cl.Name, res.Delay[k].Mean, res.Delay[k].HalfW,
			100*res.Delay[k].RelErr(m.Delay[k]), res.DelayQuantile[k][0.95])
	}
	fmt.Printf("  sim power %.1f ±%.1f W (model error %.1f%%)\n",
		res.TotalPower.Mean, res.TotalPower.HalfW, 100*res.TotalPower.RelErr(m.TotalPower))
}
