// Per-class SLA energy management (problem C3b): each customer class has its
// own delay bound; the provider wants the least-power DVFS setting that meets
// all of them. The example shows which class actually drives the bill —
// tightening the premium (high-priority) bound is nearly free, tightening
// the economy (low-priority) bound is what forces the cluster to speed up.
//
// Run with: go run ./examples/slaenergy
package main

import (
	"fmt"
	"log"

	"clusterq"
)

func main() {
	c := clusterq.Enterprise3Tier(1.0)

	// Best-case delays (all tiers at full speed) set the scale of "tight".
	_, hiSpeeds := c.SpeedBounds()
	fast := c.Clone()
	if err := fast.SetSpeeds(hiSpeeds); err != nil {
		log.Fatal(err)
	}
	mFast, err := clusterq.Evaluate(fast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best achievable delays: gold %.2fs, silver %.2fs, bronze %.2fs\n\n",
		mFast.Delay[0], mFast.Delay[1], mFast.Delay[2])

	solve := func(bounds []float64) {
		sol, err := clusterq.MinimizeEnergyPerClass(c, clusterq.EnergyOptions{
			MaxClassDelay: bounds, Starts: 3,
		})
		if err != nil {
			fmt.Printf("  bounds %v: infeasible (%v)\n", bounds, err)
			return
		}
		fmt.Printf("  bounds gold≤%.2g silver≤%.2g bronze≤%.2g → power %.0f W, delays %.2f/%.2f/%.2f s\n",
			bounds[0], bounds[1], bounds[2], sol.Objective,
			sol.Metrics.Delay[0], sol.Metrics.Delay[1], sol.Metrics.Delay[2])
	}

	loose := []float64{mFast.Delay[0] * 8, mFast.Delay[1] * 8, mFast.Delay[2] * 8}
	fmt.Println("all bounds loose (cluster idles along):")
	solve(loose)

	fmt.Println("\ntightening the GOLD bound (priority absorbs part of the cost):")
	for _, mult := range []float64{3, 1.8, 1.2} {
		b := append([]float64(nil), loose...)
		b[0] = mFast.Delay[0] * mult
		solve(b)
	}

	fmt.Println("\ntightening the BRONZE bound (priority cannot help — only speed does):")
	for _, mult := range []float64{3, 1.8, 1.2} {
		b := append([]float64(nil), loose...)
		b[2] = mFast.Delay[2] * mult
		solve(b)
	}

	fmt.Println("\nlesson: at the same relative tightness, the low-priority bound costs")
	fmt.Println("at least as much power as the high-priority one — priority scheduling")
	fmt.Println("subsidizes the premium guarantee, never the economy one.")
}
