// Energy-budget tuning (problem C2): a datacenter operator has a power cap
// and wants the best achievable latency under it. This example sweeps the
// cap across the feasible range, printing the delay/power frontier and the
// per-tier DVFS settings the optimizer picks — and compares against the
// naive "run every tier at the same relative speed" policy.
//
// Run with: go run ./examples/energybudget
package main

import (
	"fmt"
	"log"

	"clusterq"
)

func main() {
	// Start from the canonical scenario but make the database tier heavy
	// and give it DVFS headroom: asymmetric clusters are where per-tier
	// optimization beats the single-knob policy (a symmetric cluster's
	// optimum IS uniform, and the two coincide).
	c := clusterq.Enterprise3Tier(1.0)
	for k := range c.Tiers[2].Demands {
		c.Tiers[2].Demands[k].Work *= 2
	}
	c.Tiers[2].MaxSpeed = 24
	c.Tiers[2].Speed = 8

	// The feasible budget range: the cheapest stable operating point up to
	// everything-at-full-speed.
	lo, hi := c.SpeedBounds()
	slow, fast := c.Clone(), c.Clone()
	if err := slow.SetSpeeds(lo); err != nil {
		log.Fatal(err)
	}
	if err := fast.SetSpeeds(hi); err != nil {
		log.Fatal(err)
	}
	mSlow, err := clusterq.Evaluate(slow)
	if err != nil {
		log.Fatal(err)
	}
	mFast, err := clusterq.Evaluate(fast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible power range: %.0f W (floor) … %.0f W (full speed)\n\n",
		mSlow.TotalPower, mFast.TotalPower)

	fmt.Printf("%-12s %-14s %-14s %-12s %s\n",
		"budget (W)", "opt delay (s)", "naive delay", "saving", "tier speeds (web/app/db)")
	for _, f := range []float64{0.10, 0.25, 0.45, 0.70, 1.0} {
		budget := mSlow.TotalPower*1.02 + f*(mFast.TotalPower-mSlow.TotalPower*1.02)
		sol, err := clusterq.MinimizeDelay(c, clusterq.DelayOptions{EnergyBudget: budget, Starts: 3})
		if err != nil {
			fmt.Printf("%-12.0f infeasible (%v)\n", budget, err)
			continue
		}
		naive, err := clusterq.UniformDelayBaseline(c, budget)
		naiveDelay := "n/a"
		saving := "n/a"
		if err == nil {
			naiveDelay = fmt.Sprintf("%.3f", naive.Objective)
			saving = fmt.Sprintf("%.1f%%", 100*(naive.Objective-sol.Objective)/naive.Objective)
		}
		s := sol.Cluster.Speeds()
		fmt.Printf("%-12.0f %-14.3f %-14s %-12s %.2f/%.2f/%.2f\n",
			budget, sol.Objective, naiveDelay, saving, s[0], s[1], s[2])
	}

	fmt.Println("\nreading the frontier: each extra watt buys less latency — the")
	fmt.Println("convex trade-off the paper's C2 formulation navigates; the optimizer")
	fmt.Println("spends the budget on the bottleneck tier first, the naive policy can't.")
}
