// Greenops: operating the cluster through a day/night cycle. Traffic swings
// ±70% around its mean; the example compares three ways of running the same
// hardware — a static allocation sized for the mean, one sized for the peak,
// and a reactive DVFS controller — and then shows what sleep states add at
// night on an over-provisioned tier.
//
// Run with: go run ./examples/greenops
package main

import (
	"fmt"
	"log"

	"clusterq"
)

func main() {
	c := clusterq.Enterprise3Tier(1.0)

	// A smooth diurnal profile per class: ±70% around each mean rate,
	// six "days" per simulation.
	const horizon = 60000.0
	profiles := make([]clusterq.Profile, len(c.Classes))
	for k, cl := range c.Classes {
		p, err := clusterq.NewSinusoid(cl.Lambda, 0.7*cl.Lambda, horizon/6)
		if err != nil {
			log.Fatal(err)
		}
		profiles[k] = p
	}

	// Static operating points from the paper's C3a optimizer (the fast
	// dual-decomposition path), for the mean and the peak traffic.
	m, err := clusterq.Evaluate(c)
	if err != nil {
		log.Fatal(err)
	}
	bound := m.WeightedDelay // hold today's delay as the target
	solMean, err := clusterq.MinimizeEnergyDual(c, clusterq.EnergyOptions{MaxWeightedDelay: bound})
	if err != nil {
		log.Fatal(err)
	}
	peak := clusterq.ScaleArrivals(c, 1.7)
	solPeak, err := clusterq.MinimizeEnergyDual(peak, clusterq.EnergyOptions{MaxWeightedDelay: bound})
	if err != nil {
		log.Fatal(err)
	}
	peakAtMean := c.Clone()
	if err := peakAtMean.SetSpeeds(solPeak.Cluster.Speeds()); err != nil {
		log.Fatal(err)
	}

	base := clusterq.SimOptions{Horizon: horizon, Replications: 3, Seed: 42, Profiles: profiles}
	show := func(name string, cl *clusterq.Cluster, o clusterq.SimOptions) {
		res, err := clusterq.Simulate(cl, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s power %6.0f W   delay %5.2f s   (gold %.2f / bronze %.2f)\n",
			name, res.TotalPower.Mean, res.WeightedDelay.Mean,
			res.Delay[0].Mean, res.Delay[2].Mean)
	}

	fmt.Println("one cluster, three operating strategies, diurnal ±70% traffic:")
	show("static (mean-sized)", solMean.Cluster, base)
	show("static (peak-sized)", peakAtMean, base)
	ctl := base
	ctl.Controller = clusterq.UtilizationPolicy{Target: 0.6}
	ctl.ControlPeriod = 10
	show("reactive DVFS", solMean.Cluster, ctl)

	// Night shift: what instant-off sleep adds on the peak-sized cluster,
	// whose servers idle hard at night. Setup of half a second, deep sleep
	// at 20 W per server.
	sleep := base
	sleep.Sleep = []*clusterq.SleepConfig{
		{Setup: clusterq.ExpDist(0.5), SleepPower: 20},
		{Setup: clusterq.ExpDist(0.5), SleepPower: 20},
		{Setup: clusterq.ExpDist(0.5), SleepPower: 20},
	}
	fmt.Println("\nadding instant-off sleep to the peak-sized cluster:")
	show("peak-sized + sleep", peakAtMean, sleep)
	fmt.Println("\nsleep trims the idle floor the peak sizing pays for at night, at a")
	fmt.Println("sub-second setup penalty; the reactive controller attacks the same")
	fmt.Println("waste from the frequency side. They compose.")
}
