// Dispatcher: a provider runs several heterogeneous server pools behind a
// load balancer and must decide how to split incoming traffic. This example
// computes the optimal (square-root KKT) split, compares it with the
// equal-utilization rule real balancers default to, and verifies the
// prediction by simulating each pool at its assigned rate.
//
// Run with: go run ./examples/dispatcher
package main

import (
	"fmt"
	"log"

	"clusterq"
)

func main() {
	// Three server generations: a fast new pool and two older ones.
	mus := []float64{8, 3, 1.5} // service rates, req/s
	fmt.Println("pools: new(μ=8), mid(μ=3), old(μ=1.5); capacity 12.5 req/s total")
	fmt.Println()
	fmt.Printf("%-8s %-24s %-12s %-12s %-10s\n",
		"λ", "optimal split", "opt delay", "prop delay", "saving")

	for _, lam := range []float64{2, 5, 8, 11} {
		x, dOpt, err := clusterq.OptimalSplit(lam, mus)
		if err != nil {
			log.Fatal(err)
		}
		// The equal-utilization heuristic: split proportional to capacity.
		prop := make([]float64, len(mus))
		var capTotal float64
		for _, mu := range mus {
			capTotal += mu
		}
		var dProp float64
		for i, mu := range mus {
			prop[i] = lam * mu / capTotal
			dProp += prop[i] / lam / (mu - prop[i])
		}
		fmt.Printf("%-8.3g %-24s %-12.4g %-12.4g %-10s\n",
			lam,
			fmt.Sprintf("%.2f/%.2f/%.2f", x[0], x[1], x[2]),
			dOpt, dProp,
			fmt.Sprintf("%.1f%%", 100*(dProp-dOpt)/dProp))
	}

	fmt.Println("\nnote how the old pool receives NOTHING until the load forces it in:")
	fmt.Println("an idle slow server only adds delay, so the optimal dispatcher ignores")
	fmt.Println("it — the equal-utilization rule cannot express that.")

	// Verify one operating point by simulation: thinning a Poisson stream
	// is exact, so each pool can be simulated independently.
	lam := 8.0
	x, dOpt, err := clusterq.OptimalSplit(lam, mus)
	if err != nil {
		log.Fatal(err)
	}
	pm, err := clusterq.NewPowerLaw(50, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	var weighted float64
	for i, xi := range x {
		if xi <= 0 {
			continue
		}
		pool := &clusterq.Cluster{
			Tiers: []*clusterq.Tier{{
				Name: "pool", Servers: 1, Speed: mus[i],
				Discipline: clusterq.FCFS, Power: pm,
				Demands: []clusterq.Demand{{Work: 1, CV2: 1}},
			}},
			Classes: []clusterq.Class{{Name: "req", Lambda: xi}},
		}
		res, err := clusterq.Simulate(pool, clusterq.SimOptions{Horizon: 20000, Replications: 3, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		weighted += xi * res.Delay[0].Mean
	}
	fmt.Printf("\nsimulation check at λ=%.0f: predicted %.4g s, measured %.4g s\n",
		lam, dOpt, weighted/lam)
}
