// Capacity planning under priority SLAs (problem C4): the provider signs SLA
// contracts with gold/silver/bronze customers and must buy the cheapest
// server fleet that honours all of them. This example sizes the cluster with
// the paper's greedy marginal-allocation algorithm, compares it with the two
// sizing rules of thumb, and verifies the winning plan by simulation.
//
// Run with: go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"clusterq"
)

func main() {
	// Heavier traffic than the default scenario so sizing is non-trivial.
	c := clusterq.ScaleArrivals(clusterq.Enterprise3Tier(1.0), 2.2)
	fmt.Printf("traffic: %.2f req/s across %d classes; tier prices web=$1 app=$2 db=$4 per server-hour\n\n",
		c.TotalLambda(), len(c.Classes))

	// Plan with a 10% safety margin: model error and day-to-day variation
	// should not push a customer over their contract.
	plan, err := clusterq.MinimizeCost(c, clusterq.CostOptions{SafetyMargin: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	show := func(name string, sol *clusterq.Solution) {
		fmt.Printf("%s: cost $%.2f/h, servers", name, sol.Objective)
		for _, t := range sol.Cluster.Tiers {
			fmt.Printf(" %s=%d", t.Name, t.Servers)
		}
		fmt.Printf(", power %.0f W\n", sol.Metrics.TotalPower)
		for k, cl := range sol.Cluster.Classes {
			fmt.Printf("   %-7s delay %.2fs (SLA ≤ %.2gs)\n",
				cl.Name, sol.Metrics.Delay[k], cl.SLA.MaxMeanDelay)
		}
	}
	show("greedy marginal allocation (paper C4)", plan)

	if uni, err := clusterq.UniformCostBaseline(c, 64); err == nil {
		show("\nuniform sizing baseline", uni)
	}
	if prop, err := clusterq.ProportionalCostBaseline(c, 64); err == nil {
		show("\nload-proportional baseline", prop)
	}

	// Trust, but verify: simulate the chosen plan.
	fmt.Println("\nsimulating the greedy plan (3 × 20000 s)...")
	res, err := clusterq.Simulate(plan.Cluster, clusterq.SimOptions{
		Horizon: 20000, Replications: 3, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	allOK := true
	for k, cl := range plan.Cluster.Classes {
		ok := res.Delay[k].Mean <= cl.SLA.MaxMeanDelay
		allOK = allOK && ok
		fmt.Printf("   %-7s simulated delay %.2f ±%.2f s vs bound %.2g s → %v\n",
			cl.Name, res.Delay[k].Mean, res.Delay[k].HalfW, cl.SLA.MaxMeanDelay, ok)
	}
	if allOK {
		fmt.Println("all SLAs hold in simulation — the plan is sound.")
	} else {
		fmt.Println("warning: simulation disagrees with the model; add safety margin.")
	}
}
