package clusterq

import (
	"testing"
)

// TestFacadeEndToEnd exercises the full public surface in one flow:
// scenario → analytic evaluation → optimization → simulation → SLA check.
func TestFacadeEndToEnd(t *testing.T) {
	c := Enterprise3Tier(1)
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Stable() {
		t.Fatal("scenario unstable")
	}

	sol, err := MinimizeEnergy(c, EnergyOptions{MaxWeightedDelay: m.WeightedDelay * 1.5, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Metrics.TotalPower > m.TotalPower*1.01 {
		t.Errorf("relaxing the delay did not save power: %g vs %g",
			sol.Metrics.TotalPower, m.TotalPower)
	}

	res, err := Simulate(sol.Cluster, SimOptions{Horizon: 4000, Replications: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := range c.Classes {
		if res.Delay[k].RelErr(sol.Metrics.Delay[k]) > 0.3 {
			t.Errorf("class %d sim %g far from model %g", k, res.Delay[k].Mean, sol.Metrics.Delay[k])
		}
	}

	reports, err := CheckSLAs(sol.Cluster, sol.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Errorf("%d reports", len(reports))
	}
}

func TestFacadeConstructors(t *testing.T) {
	pm, err := NewPowerLaw(100, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := &Cluster{
		Tiers: []*Tier{{
			Name: "only", Servers: 1, Speed: 4, Discipline: NonPreemptive,
			Power: pm, Demands: []Demand{{Work: 1, CV2: 1}},
		}},
		Classes: []Class{{Name: "a", Lambda: 1}},
	}
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay[0] <= 0 {
		t.Error("degenerate delay")
	}
	if TotalCost(c) != 0 {
		t.Error("costless tier should cost 0")
	}
	if q, err := DelayQuantile(c, m, 0, 0.9); err != nil || q <= m.Delay[0] {
		t.Errorf("p90 %g should exceed the mean %g (%v)", q, m.Delay[0], err)
	}
}

func TestFacadeParseConfig(t *testing.T) {
	js := `{"tiers":[{"name":"t","servers":1,"speed":4,"discipline":"np",
	         "power":{"type":"powerlaw","idle":50,"kappa":1,"gamma":3},
	         "demands":[{"work":1,"cv2":1}]}],
	        "classes":[{"name":"c","lambda":1}]}`
	c, err := ParseConfig([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tiers) != 1 {
		t.Error("parse shape")
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Dual decomposition agrees with the general solver.
	c := Enterprise3Tier(1)
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	bound := m.WeightedDelay * 1.4
	dual, err := MinimizeEnergyDual(c, EnergyOptions{MaxWeightedDelay: bound})
	if err != nil {
		t.Fatal(err)
	}
	if dual.Metrics.WeightedDelay > bound*1.002 {
		t.Errorf("dual bound violated: %g > %g", dual.Metrics.WeightedDelay, bound)
	}

	// Optimal splitting.
	x, d, err := OptimalSplit(3, []float64{4, 2})
	if err != nil || d <= 0 || len(x) != 2 {
		t.Fatalf("OptimalSplit: %v %g %v", x, d, err)
	}

	// Fork-join approximation anchors to M/M/1 at k=1.
	r1, err := ForkJoinResponse(1, 0.5, 1)
	if err != nil || r1 != 2 {
		t.Errorf("ForkJoinResponse(1) = %g, %v", r1, err)
	}
	est, err := SimulateForkJoin(2, 0.5, 1, 3000, 2, 1)
	if err != nil || est.Mean <= 0 {
		t.Errorf("SimulateForkJoin: %v, %v", est, err)
	}

	// Tail optimization.
	tail, err := MinimizeEnergyTail(c, TailOptions{
		Bounds: []TailBound{{}, {}, {Delay: m.Delay[2] * 4, Percentile: 0.9}},
		Starts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if q, _ := DelayQuantile(tail.Cluster, tail.Metrics, 2, 0.9); q > m.Delay[2]*4*1.01 {
		t.Errorf("tail bound violated: %g", q)
	}

	// Routing chain through the facade.
	rc := c.Clone()
	rc.Routing = []*ClassRouting{
		{Entry: []float64{1, 0, 0}, Next: [][]float64{{0, 1, 0}, {0, 0, 1}, {0, 0, 0}}},
		{Entry: []float64{1, 0, 0}, Next: [][]float64{{0, 1, 0}, {0, 0, 1}, {0, 0, 0}}},
		{Entry: []float64{1, 0, 0}, Next: [][]float64{{0, 1, 0}, {0, 0, 1}, {0, 0.2, 0}}},
	}
	mr, err := Evaluate(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !(mr.Delay[2] > m.Delay[2]) {
		t.Errorf("retrying bronze should be slower: %g vs %g", mr.Delay[2], m.Delay[2])
	}
}
