GO ?= go

.PHONY: all build test race lint fmt tidy-check check overhead-gate

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the in-tree analyzer suite (see internal/lint); it exits non-zero
# on any finding.
lint:
	$(GO) run ./cmd/clusterqlint ./...

# fmt fails if any file is not gofmt-clean (lists the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# tidy-check fails if go.mod/go.sum would change under `go mod tidy`.
tidy-check:
	$(GO) mod tidy -diff

# overhead-gate asserts the disabled-flight-recorder event loop stays near
# the recorded baseline (results/BENCH_obs.json; CI's bench-smoke job runs
# this on every push).
overhead-gate:
	CLUSTERQ_OVERHEAD_GATE=1 $(GO) test -run TestDisabledRecorderOverheadGate -v ./internal/sim

# check is the full pre-push suite: build, formatting, module hygiene, the
# nine-analyzer lint gate (including the hotalloc escape-analysis pass, which
# replays from the go build cache), and the tests. Measured at ~12s wall on a
# warm build/test cache (2026-08: `time make check` = 11.7s real), comfortably
# under the 30s budget; a cold cache pays the one-time compile on top.
check: build fmt tidy-check lint test
