GO ?= go

.PHONY: all build test race lint fmt tidy-check check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the in-tree analyzer suite (see internal/lint); it exits non-zero
# on any finding.
lint:
	$(GO) run ./cmd/clusterqlint ./...

# fmt fails if any file is not gofmt-clean (lists the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# tidy-check fails if go.mod/go.sum would change under `go mod tidy`.
tidy-check:
	$(GO) mod tidy -diff

check: build fmt tidy-check lint test
