package clusterq

// The benchmark harness: one testing.B benchmark per reconstructed table and
// figure (E1–E23, see DESIGN.md), each running the corresponding experiment
// in quick mode so `go test -bench=.` regenerates every evaluation artifact's
// code path and reports its cost. Micro-benchmarks for the three hot layers
// (analytic evaluation, simulation, optimization) follow.

import (
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/experiments"
	"clusterq/internal/sim"
)

func benchExperiment(b *testing.B, id string) {
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Table I: per-class delay validation (analytic vs simulation).
func BenchmarkE1DelayValidation(b *testing.B) { benchExperiment(b, "E1") }

// Table II: power and per-request energy validation.
func BenchmarkE2EnergyValidation(b *testing.B) { benchExperiment(b, "E2") }

// Fig. 1: per-class delay vs load (priority separation).
func BenchmarkE3DelayVsLoad(b *testing.B) { benchExperiment(b, "E3") }

// Fig. 2: power and energy-per-job vs load at fixed speeds.
func BenchmarkE4EnergyVsLoad(b *testing.B) { benchExperiment(b, "E4") }

// Fig. 3: C2 frontier — minimized delay vs energy budget.
func BenchmarkE5DelayOpt(b *testing.B) { benchExperiment(b, "E5") }

// Fig. 4: C3a frontier — minimized power vs aggregate delay bound.
func BenchmarkE6EnergyOptAggregate(b *testing.B) { benchExperiment(b, "E6") }

// Fig. 5: C3b — minimized power under per-class bounds.
func BenchmarkE7EnergyOptPerClass(b *testing.B) { benchExperiment(b, "E7") }

// Table III: C4 cost minimization vs sizing baselines.
func BenchmarkE8CostOpt(b *testing.B) { benchExperiment(b, "E8") }

// Fig. 6: solver efficiency vs problem size.
func BenchmarkE9Scalability(b *testing.B) { benchExperiment(b, "E9") }

// Fig. 7: scheduling-discipline ablation.
func BenchmarkE10Disciplines(b *testing.B) { benchExperiment(b, "E10") }

// Fig. 8: DVFS exponent sensitivity ablation.
func BenchmarkE11GammaSensitivity(b *testing.B) { benchExperiment(b, "E11") }

// Extension: dynamic DVFS control under diurnal load.
func BenchmarkE12DynamicControl(b *testing.B) { benchExperiment(b, "E12") }

// Extension: C4 provisioning staircase vs traffic scale.
func BenchmarkE13CostStaircase(b *testing.B) { benchExperiment(b, "E13") }

// Extension: optimal traffic splitting across heterogeneous pools.
func BenchmarkE14OptimalSplit(b *testing.B) { benchExperiment(b, "E14") }

// Extension: sleep states vs always-on.
func BenchmarkE15SleepStates(b *testing.B) { benchExperiment(b, "E15") }

// Extension: percentile-bound energy minimization.
func BenchmarkE16TailBounds(b *testing.B) { benchExperiment(b, "E16") }

// Ablation: dual decomposition vs augmented Lagrangian.
func BenchmarkE17Solvers(b *testing.B) { benchExperiment(b, "E17") }

// Extension: retry storms under probabilistic routing.
func BenchmarkE18RetryStorms(b *testing.B) { benchExperiment(b, "E18") }

// Extension: total cost of ownership vs energy price.
func BenchmarkE19TCO(b *testing.B) { benchExperiment(b, "E19") }

// Extension: fork-join synchronization penalty.
func BenchmarkE20ForkJoin(b *testing.B) { benchExperiment(b, "E20") }

// Extension: failure injection — breakdowns, deadlines, retries, shedding.
func BenchmarkE21Failures(b *testing.B) { benchExperiment(b, "E21") }

// Extension: shared-clock heterogeneous fleet orchestration.
func BenchmarkE22Fleet(b *testing.B) { benchExperiment(b, "E22") }

// Extension: transient autoscaling — static plan vs reactive vs
// model-driven controller on time-varying arrivals. The costliest
// experiment benchmark: nine transient runs (three scenarios × three
// controllers), each with per-epoch C3b re-solves for the model arm.
// Reference cost lives in results/BENCH_control.json.
func BenchmarkE23Autoscaler(b *testing.B) { benchExperiment(b, "E23") }

// BenchmarkMinimizeEnergyDual measures the decomposed C3a solve — the
// production path for aggregate bounds.
func BenchmarkMinimizeEnergyDual(b *testing.B) {
	c := Enterprise3Tier(1)
	m, err := Evaluate(c)
	if err != nil {
		b.Fatal(err)
	}
	bound := m.WeightedDelay * 1.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeEnergyDual(c, EnergyOptions{MaxWeightedDelay: bound}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks -------------------------------------------------------

// BenchmarkEvaluate measures one analytical evaluation of the canonical
// 3-tier scenario — the inner loop of every optimizer.
func BenchmarkEvaluate(b *testing.B) {
	c := Enterprise3Tier(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Evaluate(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate1k measures simulating 1000 time units of the canonical
// scenario (single replication, ~4k requests).
func BenchmarkSimulate1k(b *testing.B) {
	c := Enterprise3Tier(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c, sim.Options{Horizon: 1000, Warmup: 100, Replications: 1, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinimizeEnergy measures one full C3a solve at reduced solver
// settings (the per-point cost of frontier sweeps).
func BenchmarkMinimizeEnergy(b *testing.B) {
	c := Enterprise3Tier(1)
	m, err := Evaluate(c)
	if err != nil {
		b.Fatal(err)
	}
	bound := m.WeightedDelay * 1.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeEnergy(c, EnergyOptions{MaxWeightedDelay: bound, Starts: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinimizeCost measures one full C4 sizing run (greedy growth +
// polish, no speed tuning).
func BenchmarkMinimizeCost(b *testing.B) {
	c := ScaleArrivals(Enterprise3Tier(1), 2.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeCost(c, CostOptions{SkipSpeedTuning: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayQuantile measures the hypoexponential tail evaluation used
// by percentile SLAs.
func BenchmarkDelayQuantile(b *testing.B) {
	c := Enterprise3Tier(1)
	m, err := Evaluate(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DelayQuantile(c, m, 2, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}
