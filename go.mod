module clusterq

go 1.22
