// Command clusterq runs the paper-reproduction experiment suite: every
// reconstructed table and figure of the evaluation (see DESIGN.md), printed
// as plain-text tables and optionally exported as CSV.
//
// Usage:
//
//	clusterq -list                 # show the experiment index
//	clusterq -run E1               # run one experiment
//	clusterq -run all              # run the full suite
//	clusterq -run E5 -quick        # reduced fidelity (seconds, not minutes)
//	clusterq -run all -csv out/    # also write one CSV per table
//	clusterq -run all -progress    # experiment heartbeat on stderr
//	clusterq -run all -metrics-out m.prom   # per-experiment wall-time metrics
//	clusterq -run all -http :8080  # live /metrics and /debug/pprof during the suite
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clusterq/internal/experiments"
	"clusterq/internal/obs"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		run        = flag.String("run", "", "experiment id to run (e.g. E1), or 'all'")
		quick      = flag.Bool("quick", false, "reduced simulation fidelity for fast runs")
		csvDir     = flag.String("csv", "", "directory to write per-table CSV files into")
		seed       = flag.Uint64("seed", 0, "seed offset for all simulations")
		parallel   = flag.Bool("parallel", false, "run independent experiments concurrently (wall-time figures in E9/E17 will be inflated)")
		workers    = flag.Int("sweep-workers", 0, "max concurrent sweep points within one experiment (0 = one per CPU, 1 = serial); results are identical at every setting")
		calendar   = flag.String("calendar", "", "simulator event-calendar implementation: heap (default) or ladder; results are bit-identical, only speed differs")
		progress   = flag.Bool("progress", false, "print a periodic experiment-progress heartbeat to stderr")
		metricsOut = flag.String("metrics-out", "", "write per-experiment wall-time metrics to this file (.prom/.txt for Prometheus text, else JSON)")
		httpAddr   = flag.String("http", "", "serve /metrics, /metrics.json and /debug/pprof on this address while the suite runs")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID(), e.Title())
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	var toRun []experiments.Experiment
	if strings.EqualFold(*run, "all") {
		toRun = experiments.All()
	} else {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = append(toRun, e)
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers, Calendar: *calendar}

	reg := obs.NewRegistry()
	if *httpAddr != "" {
		// Live exposition: per-experiment wall-time gauges appear as they
		// complete, and /debug/pprof profiles long suite runs in place.
		addr, stop, err := obs.ListenAndServe(*httpAddr, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "clusterq: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	var completed atomic.Int64
	start := time.Now()
	if *progress {
		ticker := time.NewTicker(5 * time.Second)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				fmt.Fprintf(os.Stderr, "clusterq: progress %d/%d experiments (elapsed %s)\n",
					completed.Load(), len(toRun), time.Since(start).Round(time.Second))
			}
		}()
	}

	// Experiments are independent; with -parallel they run concurrently
	// and print in index order once all inputs are ready.
	type outcome struct {
		tables  []*experiments.Table
		err     error
		elapsed time.Duration
	}
	results := make([]outcome, len(toRun))
	runOne := func(i int, e experiments.Experiment) {
		t0 := time.Now()
		t, err := e.Run(cfg)
		results[i] = outcome{tables: t, err: err, elapsed: time.Since(t0)}
		n := completed.Add(1)
		if *progress {
			fmt.Fprintf(os.Stderr, "clusterq: %s done in %s (%d/%d)\n",
				e.ID(), results[i].elapsed.Round(time.Millisecond), n, len(toRun))
		}
	}
	if *parallel {
		var wg sync.WaitGroup
		for i, e := range toRun {
			wg.Add(1)
			go func(i int, e experiments.Experiment) {
				defer wg.Done()
				runOne(i, e)
			}(i, e)
		}
		wg.Wait()
	} else {
		for i, e := range toRun {
			runOne(i, e)
		}
	}

	var tables int64
	for i, e := range toRun {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID(), results[i].err)
			os.Exit(1)
		}
		reg.Gauge("clusterq_"+strings.ToLower(e.ID())+"_seconds",
			"wall time of "+e.ID()).Set(results[i].elapsed.Seconds())
		tables += int64(len(results[i].tables))
		fmt.Printf("=== %s: %s ===\n\n", e.ID(), e.Title())
		for ti, t := range results[i].tables {
			if err := t.WriteASCII(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, e.ID(), ti, t); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}

	if *metricsOut != "" {
		reg.Counter("clusterq_experiments_total", "experiments completed").Add(completed.Load())
		reg.Counter("clusterq_tables_total", "tables produced").Add(tables)
		reg.Gauge("clusterq_wall_seconds", "total suite wall time").Set(time.Since(start).Seconds())
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeMetrics writes the registry to path, choosing the exposition format
// by extension (.prom/.txt → Prometheus text, anything else → JSON).
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Safety net for early error returns; the success path closes (and
	// checks) explicitly below.
	defer func() { _ = f.Close() }()
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		err = reg.WritePrometheus(f)
	} else {
		err = reg.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

func writeCSV(dir, id string, idx int, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s_%d.csv", strings.ToLower(id), idx)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	// Safety net for early error returns; the success path closes (and
	// checks) explicitly below.
	defer func() { _ = f.Close() }()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
