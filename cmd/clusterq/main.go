// Command clusterq runs the paper-reproduction experiment suite: every
// reconstructed table and figure of the evaluation (see DESIGN.md), printed
// as plain-text tables and optionally exported as CSV.
//
// Usage:
//
//	clusterq -list                 # show the experiment index
//	clusterq -run E1               # run one experiment
//	clusterq -run all              # run the full suite
//	clusterq -run E5 -quick        # reduced fidelity (seconds, not minutes)
//	clusterq -run all -csv out/    # also write one CSV per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"clusterq/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "", "experiment id to run (e.g. E1), or 'all'")
		quick    = flag.Bool("quick", false, "reduced simulation fidelity for fast runs")
		csvDir   = flag.String("csv", "", "directory to write per-table CSV files into")
		seed     = flag.Uint64("seed", 0, "seed offset for all simulations")
		parallel = flag.Bool("parallel", false, "run independent experiments concurrently (wall-time figures in E9/E17 will be inflated)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID(), e.Title())
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	var toRun []experiments.Experiment
	if strings.EqualFold(*run, "all") {
		toRun = experiments.All()
	} else {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = append(toRun, e)
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}

	// Experiments are independent; with -parallel they run concurrently
	// and print in index order once all inputs are ready.
	type outcome struct {
		tables []*experiments.Table
		err    error
	}
	results := make([]outcome, len(toRun))
	if *parallel {
		var wg sync.WaitGroup
		for i, e := range toRun {
			wg.Add(1)
			go func(i int, e experiments.Experiment) {
				defer wg.Done()
				t, err := e.Run(cfg)
				results[i] = outcome{tables: t, err: err}
			}(i, e)
		}
		wg.Wait()
	} else {
		for i, e := range toRun {
			t, err := e.Run(cfg)
			results[i] = outcome{tables: t, err: err}
		}
	}

	for i, e := range toRun {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID(), results[i].err)
			os.Exit(1)
		}
		fmt.Printf("=== %s: %s ===\n\n", e.ID(), e.Title())
		for ti, t := range results[i].tables {
			if err := t.WriteASCII(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, e.ID(), ti, t); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}
}

func writeCSV(dir, id string, idx int, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s_%d.csv", strings.ToLower(id), idx)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
