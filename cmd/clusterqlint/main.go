// Command clusterqlint runs clusterq's custom static-analysis suite over the
// repository: nine analyzers enforcing the invariants the reproduction's
// credibility rests on — simulator determinism (simdeterm), NaN-safe float
// comparisons (floateq), the observability layer's nil-means-no-op contract
// (nilnoop), checked writer errors (errsink), NaN-safe constructor validation
// (ctorvalidate), map-iteration-order dataflow into results (mapiter), the
// RNG-stream split/append discipline (rngstream), the pooled hot path's
// compile-time allocation budget (hotalloc), and sync/atomic misuse
// (syncguard).
//
// Usage:
//
//	clusterqlint [packages]            # go-style patterns; default ./...
//	clusterqlint -format=sarif ./...   # SARIF 2.1.0 for code scanning
//	clusterqlint -list                 # describe the analyzers and exit
//
// Exit status: 0 when clean, 1 when any analyzer reports a finding, 2 on
// usage or load errors — independent of the output format, so CI can emit
// SARIF and still gate on the code. Findings are suppressed line-by-line
// with a waiver comment on or directly above the flagged line:
//
//	//lint:waive <analyzer> reason="why this is safe" until=2026-12-01
//
// Both attributes are mandatory, and the until date is an exclusive expiry:
// from that day on the waiver stops suppressing and is itself reported, so
// stale exceptions fail the build. See README "Static analysis".
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterq/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	format := flag.String("format", "text", "output format: text or sarif")
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterqlint:", err)
		os.Exit(2)
	}
	args := append([]string{"-format", *format}, flag.Args()...)
	os.Exit(lint.Main(os.Stdout, os.Stderr, cwd, args))
}
