// Command clusterqlint runs clusterq's custom static-analysis suite over the
// repository: five analyzers enforcing the invariants the reproduction's
// credibility rests on — simulator determinism (simdeterm), NaN-safe float
// comparisons (floateq), the observability layer's nil-means-no-op contract
// (nilnoop), checked writer errors (errsink), and NaN-safe constructor
// validation (ctorvalidate).
//
// Usage:
//
//	clusterqlint [packages]     # go-style patterns; default ./...
//	clusterqlint -list          # describe the analyzers and exit
//
// Exit status: 0 when clean, 1 when any analyzer reports a finding, 2 on
// usage or load errors. Findings are suppressed line-by-line with a
// `//lint:<analyzer> <reason>` comment on or directly above the flagged
// line; see README "Static analysis".
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterq/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterqlint:", err)
		os.Exit(2)
	}
	os.Exit(lint.Main(os.Stdout, os.Stderr, cwd, flag.Args()))
}
