// Command simrun simulates a JSON-described cluster and reports the measured
// per-class delays, power and energy side by side with the analytical model
// (the paper's validation methodology, on your own configuration).
//
// Usage:
//
//	simrun -config cluster.json [-horizon 30000] [-reps 5] [-seed 0] [-q 0.95]
//	       [-swing 0.5 -period 5000]      # diurnal sinusoidal load
//	       [-reactive 0.7 -epoch 20]      # runtime DVFS controller
//	       [-controller model -control-period 100]  # operating strategy: static|reactive|model
//	                                      # (model = online autoscaler re-solving the energy/SLA
//	                                      # plan each epoch from window estimates; 1 replication)
//	       [-sleep 2.0 -sleep-watts 20]   # instant-off sleep on every tier
//	       [-mtbf 100 -mttr 5]            # server breakdown/repair on every tier
//	       [-deadline 10 -max-retries 2 -retry-backoff 0.5]  # timeout–retry–abandon, all classes
//	       [-shed-threshold 0.9 -shed-period 25]             # priority-aware admission control
//	       [-fleet 3 -fleet-spread 0.2]   # N cluster replicas under one shared clock
//	       [-sample-period 10]            # probe: sample queues/util/power
//	       [-metrics-out m.json]          # metric exposition (.prom for Prometheus text)
//	       [-timeline-out tl.csv]         # sampled time series as CSV
//	       [-span-out spans.json]         # flight recorder: Chrome trace-event JSON (forces 1 replication)
//	       [-window 500 -window-buckets 16 -window-quantile 0.99]  # sliding-window sensors
//	       [-http :8080]                  # live /metrics, /metrics.json, /trace, /debug/pprof
//	       [-progress]                    # periodic replication heartbeat on stderr
//	       [-cpuprofile cpu.pb.gz -memprofile mem.pb.gz]  # pprof hooks
//
// The dynamic flags desynchronize the run from the stationary analytical
// model on purpose: the analytic columns then show what the static model
// predicts, the simulated columns what the dynamic policies deliver.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"clusterq/internal/cluster"
	"clusterq/internal/control"
	"clusterq/internal/obs"
	"clusterq/internal/obs/trace"
	"clusterq/internal/obs/window"
	"clusterq/internal/queueing"
	"clusterq/internal/sim"
	"clusterq/internal/sim/multi"
)

func main() {
	var (
		path    = flag.String("config", "", "JSON cluster config (required)")
		horizon = flag.Float64("horizon", 30000, "simulated seconds per replication")
		reps    = flag.Int("reps", 5, "independent replications")
		seed    = flag.Uint64("seed", 0, "base RNG seed")
		q       = flag.Float64("q", 0.95, "delay quantile to report (0 disables)")

		swing  = flag.Float64("swing", 0, "relative diurnal swing of all arrival rates, in [0,1)")
		period = flag.Float64("period", 0, "diurnal period in simulated seconds (required with -swing)")

		reactive = flag.Float64("reactive", 0, "enable the reactive DVFS controller with this utilization target (0 disables)")
		epoch    = flag.Float64("epoch", 20, "controller epoch in simulated seconds")

		controller    = flag.String("controller", "", "operating strategy: static (no runtime control), reactive (utilization-target DVFS, target from -reactive or 0.7), or model (model-driven autoscaler re-solving the energy/SLA plan each epoch against window estimates; forces 1 replication)")
		controlPeriod = flag.Float64("control-period", 0, "control epoch in simulated seconds for -controller (default: -epoch)")

		sleepSetup = flag.Float64("sleep", 0, "enable instant-off sleep on every tier with this mean setup time (0 disables)")
		sleepWatts = flag.Float64("sleep-watts", 0, "per-server power while asleep (with -sleep)")

		mtbf = flag.Float64("mtbf", 0, "enable server breakdowns on every tier with this mean time between failures (0 disables)")
		mttr = flag.Float64("mttr", 0, "mean time to repair a failed server (required with -mtbf)")

		deadline     = flag.Float64("deadline", 0, "per-attempt response-time deadline for every class (0 disables)")
		maxRetries   = flag.Int("max-retries", 0, "retry budget per timed-out request (with -deadline)")
		retryBackoff = flag.Float64("retry-backoff", 0, "mean exponential backoff before the first retry, doubling per attempt (with -deadline)")

		shedThreshold = flag.Float64("shed-threshold", 0, "worst-tier utilization above which low classes are shed (0 disables)")
		shedPeriod    = flag.Float64("shed-period", 25, "admission-control measurement epoch in simulated seconds (with -shed-threshold)")

		tracePath = flag.String("trace", "", "write a CSV event trace to this file (forces 1 replication)")

		calendar = flag.String("calendar", "", "event-calendar implementation: heap (default) or ladder; results are bit-identical, only speed differs")

		fleetN      = flag.Int("fleet", 0, "run this many cluster replicas under one shared clock instead of independent replications (0 disables; dynamic flags apply to every replica)")
		fleetSpread = flag.Float64("fleet-spread", 0, "heterogeneity of the fleet: replica speeds spread evenly across [1-s, 1+s] times the configured speed (with -fleet, in [0,1))")

		samplePeriod = flag.Float64("sample-period", 0, "probe sampling period in simulated seconds (0 disables the probe)")
		metricsOut   = flag.String("metrics-out", "", "write metrics to this file (.prom/.txt for Prometheus text, else JSON)")
		timelineOut  = flag.String("timeline-out", "", "write the probe's sampled time series to this CSV file (requires -sample-period)")
		spanOut      = flag.String("span-out", "", "attach the flight recorder and write Chrome trace-event JSON to this file (forces 1 replication; load in Perfetto)")
		winWidth     = flag.Float64("window", 0, "sliding-window width in simulated seconds for the streaming sensors (0 disables)")
		winBuckets   = flag.Int("window-buckets", 0, "buckets per sliding window (0 = default 16)")
		winQuantile  = flag.Float64("window-quantile", 0, "sojourn tail quantile the window sensors track (0 = default 0.99)")
		httpAddr     = flag.String("http", "", "serve /metrics, /metrics.json, /trace and /debug/pprof on this address during and after the run")
		progress     = flag.Bool("progress", false, "print a periodic replication-progress heartbeat to stderr")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		fatal(err)
	}
	c, err := cluster.ParseConfig(data)
	if err != nil {
		fatal(err)
	}
	m, err := cluster.Evaluate(c)
	if err != nil {
		fatal(err)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		// Profiles are best-effort diagnostics: a failed close must not turn
		// a successful simulation into a failure.
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	// Fleet mode runs N single-replication replicas under one shared clock
	// (internal/sim/multi). The single-run observability surfaces assume one
	// replication of one cluster, so they do not combine with a fleet.
	if *fleetN < 0 {
		fatal(fmt.Errorf("-fleet must be non-negative, got %d", *fleetN))
	}
	if *fleetN > 0 {
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"-trace", *tracePath != ""},
			{"-span-out", *spanOut != ""},
			{"-timeline-out", *timelineOut != ""},
			{"-metrics-out", *metricsOut != ""},
			{"-sample-period", *samplePeriod != 0},
			{"-window", *winWidth > 0},
			{"-http", *httpAddr != ""},
			{"-progress", *progress},
			{"-controller=model", *controller == "model"},
		} {
			if f.set {
				fatal(fmt.Errorf("%s is a single-run surface; it cannot combine with -fleet", f.name))
			}
		}
		if !(*fleetSpread >= 0 && *fleetSpread < 1) {
			fatal(fmt.Errorf("-fleet-spread %g out of [0,1)", *fleetSpread))
		}
	} else if *fleetSpread != 0 {
		fatal(fmt.Errorf("-fleet-spread requires -fleet"))
	}

	opts := sim.Options{Horizon: *horizon, Replications: *reps, Seed: *seed, Calendar: *calendar}
	if *q > 0 && *q < 1 {
		opts.Quantiles = []float64{*q}
	}

	// Observability: a positive sampling period (or any metrics request,
	// including live HTTP exposition and the window sensors, which ride the
	// probe tick) attaches the probe; the registry collects event counters
	// and run gauges for the exposition file and the /metrics endpoints.
	var reg *obs.Registry
	if *samplePeriod < 0 {
		fatal(fmt.Errorf("-sample-period must be positive, got %g", *samplePeriod))
	}
	if *samplePeriod > 0 || *metricsOut != "" || *httpAddr != "" || *winWidth > 0 {
		reg = obs.NewRegistry()
		period := *samplePeriod
		if period <= 0 {
			period = *horizon / 200 // a sane default trajectory resolution
		}
		opts.Probe = &sim.Probe{Period: period, Registry: reg}
	} else if *timelineOut != "" {
		fatal(fmt.Errorf("-timeline-out requires -sample-period"))
	}
	if (*winBuckets != 0 || *winQuantile != 0) && *winWidth <= 0 {
		fatal(fmt.Errorf("-window-buckets/-window-quantile require -window"))
	}
	if *winWidth > 0 {
		w, err := window.NewSet(window.Config{
			Width: *winWidth, Buckets: *winBuckets, Quantile: *winQuantile,
		}, len(c.Classes), len(c.Tiers))
		if err != nil {
			fatal(err)
		}
		// Bound gauges make the live /metrics endpoints show the sensors'
		// current readings; each probe tick republishes them.
		w.Bind(reg)
		opts.Windows = w
	}

	// The flight recorder: -span-out asks for the Chrome trace, and a live
	// /trace endpoint wants one too when the run is single-replication
	// anyway (the recorder contract; see sim.Options.Recorder).
	var rec *trace.Recorder
	if *spanOut != "" || (*httpAddr != "" && *reps == 1 && *tracePath == "") {
		rec = trace.NewRecorder(0)
		opts.Recorder = rec
		if *spanOut != "" && *reps != 1 {
			opts.Replications = 1
			fmt.Printf("recording spans to %s (single replication)\n", *spanOut)
		}
	}

	// Live exposition starts before the run so long simulations can be
	// profiled (/debug/pprof) and watched (/metrics) while they execute.
	if *httpAddr != "" {
		addr, stop, err := obs.ListenAndServe(*httpAddr, reg, rec)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Printf("serving /metrics, /metrics.json, /trace, /debug/pprof on http://%s\n", addr)
	}

	var progressDone atomic.Int64
	if *progress {
		opts.Progress = func(done, total int) { progressDone.Store(int64(done)) }
		start := time.Now()
		ticker := time.NewTicker(2 * time.Second)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				fmt.Fprintf(os.Stderr, "simrun: progress %d/%d replications (elapsed %s)\n",
					progressDone.Load(), *reps, time.Since(start).Round(time.Second))
			}
		}()
	}
	// finishTrace closes the trace file once the run succeeded. sim.Run
	// buffers and flushes internally (and propagates write errors), so the
	// file handle goes straight in; only the close is ours to check.
	finishTrace := func() error { return nil }
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		finishTrace = func() error { return f.Close() }
		opts.Trace = f
		opts.Replications = 1
		fmt.Printf("tracing events to %s (single replication)\n", *tracePath)
	}
	if *swing > 0 {
		if !(*period > 0) {
			fatal(fmt.Errorf("-swing requires -period"))
		}
		opts.Profiles = make([]sim.Profile, len(c.Classes))
		for k, cl := range c.Classes {
			p, err := sim.NewSinusoid(cl.Lambda, *swing*cl.Lambda, *period)
			if err != nil {
				fatal(err)
			}
			opts.Profiles[k] = p
		}
		fmt.Printf("diurnal load: ±%.0f%% swing, period %.4g s\n", 100**swing, *period)
	}
	// Operating strategy. -controller is the umbrella flag; the original
	// -reactive spelling keeps working when -controller is unset.
	ctlPeriod := *controlPeriod
	if ctlPeriod <= 0 {
		ctlPeriod = *epoch
	}
	var modelCtl *control.Controller
	switch *controller {
	case "":
		if *reactive > 0 {
			opts.Controller = sim.UtilizationPolicy{Target: *reactive}
			opts.ControlPeriod = ctlPeriod
			fmt.Printf("reactive DVFS: target utilization %.2f, epoch %.4g s\n", *reactive, ctlPeriod)
		}
	case "static":
		if *reactive > 0 {
			fatal(fmt.Errorf("-controller=static contradicts -reactive %g", *reactive))
		}
	case "reactive":
		target := *reactive
		if target <= 0 {
			target = 0.7
		}
		opts.Controller = sim.UtilizationPolicy{Target: target}
		opts.ControlPeriod = ctlPeriod
		fmt.Printf("reactive DVFS: target utilization %.2f, epoch %.4g s\n", target, ctlPeriod)
	case "model":
		if *reactive > 0 {
			fatal(fmt.Errorf("-controller=model contradicts -reactive %g", *reactive))
		}
		ctl, err := control.New(c, control.Config{Objective: control.EnergySLA})
		if err != nil {
			fatal(fmt.Errorf("-controller=model: %w (the model controller re-solves the energy/SLA plan, so the config needs SLA mean-delay bounds)", err))
		}
		modelCtl = ctl
		opts.PlanController = ctl
		opts.ControlPeriod = ctlPeriod
		if opts.Windows == nil {
			// The autoscaler estimates arrival rates from the window
			// sensors; attach a set sized to the control epoch when the
			// user did not configure one with -window.
			w, err := window.NewSet(window.Config{Width: ctlPeriod}, len(c.Classes), len(c.Tiers))
			if err != nil {
				fatal(err)
			}
			if reg != nil {
				w.Bind(reg)
			}
			opts.Windows = w
		}
		if opts.Replications != 1 {
			opts.Replications = 1
			fmt.Println("model controller: single replication (the controller is stateful across epochs)")
		}
		fmt.Printf("model-driven autoscaler: objective %v, epoch %.4g s\n", control.EnergySLA, ctlPeriod)
	default:
		fatal(fmt.Errorf("-controller must be static, reactive or model, got %q", *controller))
	}
	if *sleepSetup > 0 {
		opts.Sleep = make([]*sim.SleepConfig, len(c.Tiers))
		for j := range c.Tiers {
			opts.Sleep[j] = &sim.SleepConfig{
				Setup:      queueing.NewExponential(*sleepSetup),
				SleepPower: *sleepWatts,
			}
		}
		fmt.Printf("instant-off sleep: setup mean %.4g s, %.4g W asleep\n", *sleepSetup, *sleepWatts)
	}
	if *mtbf > 0 {
		opts.Failures = make([]*sim.FailureConfig, len(c.Tiers))
		for j := range c.Tiers {
			opts.Failures[j] = &sim.FailureConfig{MTBF: *mtbf, MTTR: *mttr}
		}
		fmt.Printf("breakdowns: MTBF %.4g s, MTTR %.4g s (availability %.4g)\n",
			*mtbf, *mttr, opts.Failures[0].Availability())
	}
	if *deadline > 0 {
		opts.Deadlines = make([]*sim.DeadlineConfig, len(c.Classes))
		for k := range c.Classes {
			opts.Deadlines[k] = &sim.DeadlineConfig{
				Deadline: *deadline, MaxRetries: *maxRetries, RetryBackoff: *retryBackoff,
			}
		}
		fmt.Printf("deadlines: %.4g s per attempt, %d retries, backoff mean %.4g s\n",
			*deadline, *maxRetries, *retryBackoff)
	}
	if *shedThreshold > 0 {
		opts.Shedding = &sim.SheddingConfig{Threshold: *shedThreshold, Period: *shedPeriod}
		fmt.Printf("admission control: shed above %.2f utilization, epoch %.4g s\n",
			*shedThreshold, *shedPeriod)
	}
	if *fleetN > 0 {
		runFleet(c, m, opts, *fleetN, *fleetSpread, *seed)
		return
	}
	res, err := sim.Run(c, opts)
	if err != nil {
		fatal(err)
	}
	if err := finishTrace(); err != nil {
		fatal(fmt.Errorf("trace: %w", err))
	}
	if *spanOut != "" {
		if err := writeSpans(*spanOut, rec); err != nil {
			fatal(fmt.Errorf("span-out: %w", err))
		}
		fmt.Printf("chrome trace written to %s (%d spans; load via https://ui.perfetto.dev)\n",
			*spanOut, len(rec.Spans()))
	}

	fmt.Printf("simulated %d replications of %.4g s (warmup %.4g s)\n\n",
		opts.Replications, *horizon, *horizon*0.1)
	fmt.Println("per-class mean end-to-end delay (s):")
	for k, cl := range c.Classes {
		line := fmt.Sprintf("  %-10s model %8.4g   sim %8.4g ±%.3g  (err %.1f%%)",
			cl.Name, m.Delay[k], res.Delay[k].Mean, res.Delay[k].HalfW,
			100*res.Delay[k].RelErr(m.Delay[k]))
		if len(opts.Quantiles) > 0 {
			mq, err := cluster.DelayQuantile(c, m, k, *q)
			if err == nil {
				line += fmt.Sprintf("   p%.0f model %.4g sim %.4g",
					100**q, mq, res.DelayQuantile[k][*q])
			}
		}
		fmt.Println(line)
	}
	fmt.Printf("\ncluster average power (W): model %.5g   sim %.5g ±%.3g  (err %.1f%%)\n",
		m.TotalPower, res.TotalPower.Mean, res.TotalPower.HalfW,
		100*res.TotalPower.RelErr(m.TotalPower))
	fmt.Println("\nper-tier utilization:")
	for j, tr := range res.Tiers {
		fmt.Printf("  %-10s model %6.1f%%   sim %6.1f%%   power %.4g W\n",
			tr.Name, 100*m.Tiers[j].Utilization, 100*tr.Utilization.Mean, tr.Power.Mean)
	}
	fmt.Println("\nper-class dynamic energy per request (J):")
	for k, cl := range c.Classes {
		fmt.Printf("  %-10s model %8.4g   sim %8.4g ±%.3g\n",
			cl.Name, m.EnergyPerRequest[k], res.EnergyPerRequest[k].Mean, res.EnergyPerRequest[k].HalfW)
	}

	if modelCtl != nil {
		est := modelCtl.Estimates()
		fmt.Printf("\nautoscaler: %v; final rate estimates", modelCtl.Stats())
		for k, cl := range c.Classes {
			fmt.Printf("  %s %.4g/s (nominal %.4g)", cl.Name, est[k], cl.Lambda)
		}
		fmt.Println()
	}

	if opts.Failures != nil || opts.Deadlines != nil || opts.Shedding != nil {
		fmt.Println("\ndegraded mode (post-warmup, summed over replications):")
		for k, cl := range c.Classes {
			fmt.Printf("  %-10s goodput %8.4g req/s (offered %.4g)   timeouts %d  retries %d  abandoned %d  shed %d\n",
				cl.Name, res.Goodput[k].Mean, cl.Lambda,
				res.Timeouts[k], res.Retries[k], res.Abandoned[k], res.Shed[k])
		}
	}

	if rec != nil {
		fmt.Println("\nflight recorder: per-class sojourn breakdown (mean s):")
		for k, cl := range c.Classes {
			b := rec.Breakdown(k)
			fmt.Printf("  %-10s spans %6d (abandoned %d, dropped %d)   queue %8.4g  service %8.4g  preempted %8.4g  backoff %8.4g  = sojourn %8.4g\n",
				cl.Name, b.Spans(), b.Abandoned, b.Dropped,
				b.MeanQueue(), b.MeanService(), b.MeanPreempted(), b.MeanBackoff(), b.MeanSojourn())
		}
		if n := rec.SpansDropped() + rec.EventsDropped(); n > 0 {
			fmt.Printf("  (ring overflow: %d records dropped; raise the recorder capacity)\n", n)
		}
	}
	if w := opts.Windows; w != nil {
		fmt.Printf("\nwindow sensors (last %.4g s of the recording replication):\n", w.Config().Width)
		for k, cl := range c.Classes {
			cs := w.Class(*horizon, k)
			fmt.Printf("  %-10s λ̂ %8.4g/s   mean sojourn %8.4g s   %s %8.4g s\n",
				cl.Name, cs.Rate, cs.MeanSojourn, w.Config().QuantileLabel(), cs.TailSojourn)
		}
	}

	if tl := res.Timeline; tl != nil {
		fmt.Printf("\nprobe: %d samples every %.4g s across %d series\n",
			tl.Len(), opts.Probe.Period, len(tl.Names()))
		for j, tr := range res.Tiers {
			name := fmt.Sprintf("tier%d_util", j)
			fmt.Printf("  %-10s time-avg util %.1f%%  peak queue %.0f\n",
				tr.Name, 100*tl.Mean(name), tl.Max(fmt.Sprintf("tier%d_queue", j)))
		}
	}
	if *timelineOut != "" {
		f, err := os.Create(*timelineOut)
		if err != nil {
			fatal(err)
		}
		if err := res.Timeline.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline written to %s\n", *timelineOut)
	}
	if *metricsOut != "" {
		// Fold the headline measurements into the registry next to the
		// event counters the probe already published.
		for j, tr := range res.Tiers {
			reg.Gauge(fmt.Sprintf("sim_tier%d_utilization", j), "measured busy fraction per server").Set(tr.Utilization.Mean)
			reg.Gauge(fmt.Sprintf("sim_tier%d_power_watts", j), "measured tier average power").Set(tr.Power.Mean)
		}
		for k := range c.Classes {
			reg.Gauge(fmt.Sprintf("sim_class%d_delay_seconds", k), "measured mean end-to-end delay").Set(res.Delay[k].Mean)
		}
		if err := writeMetrics(*metricsOut, reg, res.Timeline); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *httpAddr != "" {
		// The run is done but the endpoints stay live (final gauges, the
		// recorded trace, pprof) until the user interrupts.
		fmt.Println("run complete; still serving — interrupt (Ctrl-C) to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

// scaleSpeeds clones the cluster with every tier's speed — and its DVFS
// clamp range — multiplied by factor, modeling a different server generation
// of the same configuration.
func scaleSpeeds(c *cluster.Cluster, factor float64) *cluster.Cluster {
	n := c.Clone()
	for _, t := range n.Tiers {
		t.Speed *= factor
		t.MinSpeed *= factor
		t.MaxSpeed *= factor
	}
	return n
}

// runFleet simulates n replicas of the configured cluster under one shared
// clock (internal/sim/multi) and prints per-replica and fleet-level results.
// Replica i runs on seed+i; with a positive spread the replica speeds fan
// out evenly across [1-spread, 1+spread], making the fleet heterogeneous.
func runFleet(c *cluster.Cluster, m *cluster.Metrics, base sim.Options, n int, spread float64, seed uint64) {
	replicas := make([]multi.Replica, n)
	factors := make([]float64, n)
	for i := range replicas {
		factor := 1.0
		rc := c
		if n > 1 && spread > 0 {
			factor = 1 - spread + 2*spread*float64(i)/float64(n-1)
			rc = scaleSpeeds(c, factor)
		}
		factors[i] = factor
		replicas[i] = multi.Replica{
			Name:    fmt.Sprintf("replica%d", i),
			Cluster: rc,
			Options: base,
			Seed:    seed + uint64(i),
		}
	}
	orch, err := multi.New(replicas)
	if err != nil {
		fatal(err)
	}
	results, err := orch.Results()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("simulated %d replicas under one shared clock, %.4g s each (speed spread ±%.0f%%)\n\n",
		n, base.Horizon, 100*spread)
	fmt.Println("per-replica results:")
	for i, res := range results {
		var done int64
		for _, nk := range res.Completed {
			done += nk
		}
		fmt.Printf("  %-10s speed x%-5.3g power %8.5g W   weighted delay %8.4g s   completed %d\n",
			orch.Name(i), factors[i], res.TotalPower.Mean, res.WeightedDelay.Mean, done)
		for j, tr := range res.Tiers {
			fmt.Printf("    %-10s util %6.1f%% (model at x1: %5.1f%%)   power %.4g W\n",
				tr.Name, 100*tr.Utilization.Mean, 100*m.Tiers[j].Utilization, tr.Power.Mean)
		}
	}
	s := multi.Summarize(results)
	fmt.Printf("\nfleet rollup: power %.5g W   weighted delay %.4g s   completed %d\n",
		s.TotalPower, s.WeightedDelay, s.Completed)
}

// writeSpans dumps the recorder's spans as Chrome trace-event JSON.
func writeSpans(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Safety net for early error returns; the success path closes (and
	// checks) explicitly below.
	defer func() { _ = f.Close() }()
	w := bufio.NewWriter(f)
	if err := rec.WriteChromeTrace(w); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// writeMetrics writes the registry to path: Prometheus text when the
// extension says so, otherwise JSON with the timeline (if any) embedded as a
// second top-level section.
func writeMetrics(path string, reg *obs.Registry, tl *obs.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Safety net for early error returns; the success path closes (and
	// checks) explicitly below.
	defer func() { _ = f.Close() }()
	w := bufio.NewWriter(f)
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		// Prometheus text is a point-in-time format: the timeline stays in
		// -timeline-out CSV territory.
		err = reg.WritePrometheus(w)
	} else {
		err = writeMetricsJSON(w, reg, tl)
	}
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeMetricsJSON(w *bufio.Writer, reg *obs.Registry, tl *obs.Timeline) error {
	if tl == nil {
		return reg.WriteJSON(w)
	}
	doc := struct {
		Metrics  []obs.Snapshot `json:"metrics"`
		Timeline *obs.Timeline  `json:"timeline"`
	}{Metrics: reg.Snapshot(), Timeline: tl}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrun:", err)
	os.Exit(1)
}
