// Command simrun simulates a JSON-described cluster and reports the measured
// per-class delays, power and energy side by side with the analytical model
// (the paper's validation methodology, on your own configuration).
//
// Usage:
//
//	simrun -config cluster.json [-horizon 30000] [-reps 5] [-seed 0] [-q 0.95]
//	       [-swing 0.5 -period 5000]      # diurnal sinusoidal load
//	       [-reactive 0.7 -epoch 20]      # runtime DVFS controller
//	       [-sleep 2.0 -sleep-watts 20]   # instant-off sleep on every tier
//
// The dynamic flags desynchronize the run from the stationary analytical
// model on purpose: the analytic columns then show what the static model
// predicts, the simulated columns what the dynamic policies deliver.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"clusterq/internal/cluster"
	"clusterq/internal/queueing"
	"clusterq/internal/sim"
)

func main() {
	var (
		path    = flag.String("config", "", "JSON cluster config (required)")
		horizon = flag.Float64("horizon", 30000, "simulated seconds per replication")
		reps    = flag.Int("reps", 5, "independent replications")
		seed    = flag.Uint64("seed", 0, "base RNG seed")
		q       = flag.Float64("q", 0.95, "delay quantile to report (0 disables)")

		swing  = flag.Float64("swing", 0, "relative diurnal swing of all arrival rates, in [0,1)")
		period = flag.Float64("period", 0, "diurnal period in simulated seconds (required with -swing)")

		reactive = flag.Float64("reactive", 0, "enable the reactive DVFS controller with this utilization target (0 disables)")
		epoch    = flag.Float64("epoch", 20, "controller epoch in simulated seconds")

		sleepSetup = flag.Float64("sleep", 0, "enable instant-off sleep on every tier with this mean setup time (0 disables)")
		sleepWatts = flag.Float64("sleep-watts", 0, "per-server power while asleep (with -sleep)")

		tracePath = flag.String("trace", "", "write a CSV event trace to this file (forces 1 replication)")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		fatal(err)
	}
	c, err := cluster.ParseConfig(data)
	if err != nil {
		fatal(err)
	}
	m, err := cluster.Evaluate(c)
	if err != nil {
		fatal(err)
	}
	opts := sim.Options{Horizon: *horizon, Replications: *reps, Seed: *seed}
	if *q > 0 && *q < 1 {
		opts.Quantiles = []float64{*q}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		opts.Trace = bw
		opts.Replications = 1
		fmt.Printf("tracing events to %s (single replication)\n", *tracePath)
	}
	if *swing > 0 {
		if !(*period > 0) {
			fatal(fmt.Errorf("-swing requires -period"))
		}
		opts.Profiles = make([]sim.Profile, len(c.Classes))
		for k, cl := range c.Classes {
			p, err := sim.NewSinusoid(cl.Lambda, *swing*cl.Lambda, *period)
			if err != nil {
				fatal(err)
			}
			opts.Profiles[k] = p
		}
		fmt.Printf("diurnal load: ±%.0f%% swing, period %.4g s\n", 100**swing, *period)
	}
	if *reactive > 0 {
		opts.Controller = sim.UtilizationPolicy{Target: *reactive}
		opts.ControlPeriod = *epoch
		fmt.Printf("reactive DVFS: target utilization %.2f, epoch %.4g s\n", *reactive, *epoch)
	}
	if *sleepSetup > 0 {
		opts.Sleep = make([]*sim.SleepConfig, len(c.Tiers))
		for j := range c.Tiers {
			opts.Sleep[j] = &sim.SleepConfig{
				Setup:      queueing.NewExponential(*sleepSetup),
				SleepPower: *sleepWatts,
			}
		}
		fmt.Printf("instant-off sleep: setup mean %.4g s, %.4g W asleep\n", *sleepSetup, *sleepWatts)
	}
	res, err := sim.Run(c, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("simulated %d replications of %.4g s (warmup %.4g s)\n\n",
		*reps, *horizon, *horizon*0.1)
	fmt.Println("per-class mean end-to-end delay (s):")
	for k, cl := range c.Classes {
		line := fmt.Sprintf("  %-10s model %8.4g   sim %8.4g ±%.3g  (err %.1f%%)",
			cl.Name, m.Delay[k], res.Delay[k].Mean, res.Delay[k].HalfW,
			100*res.Delay[k].RelErr(m.Delay[k]))
		if len(opts.Quantiles) > 0 {
			mq, err := cluster.DelayQuantile(c, m, k, *q)
			if err == nil {
				line += fmt.Sprintf("   p%.0f model %.4g sim %.4g",
					100**q, mq, res.DelayQuantile[k][*q])
			}
		}
		fmt.Println(line)
	}
	fmt.Printf("\ncluster average power (W): model %.5g   sim %.5g ±%.3g  (err %.1f%%)\n",
		m.TotalPower, res.TotalPower.Mean, res.TotalPower.HalfW,
		100*res.TotalPower.RelErr(m.TotalPower))
	fmt.Println("\nper-tier utilization:")
	for j, tr := range res.Tiers {
		fmt.Printf("  %-10s model %6.1f%%   sim %6.1f%%   power %.4g W\n",
			tr.Name, 100*m.Tiers[j].Utilization, 100*tr.Utilization.Mean, tr.Power.Mean)
	}
	fmt.Println("\nper-class dynamic energy per request (J):")
	for k, cl := range c.Classes {
		fmt.Printf("  %-10s model %8.4g   sim %8.4g ±%.3g\n",
			cl.Name, m.EnergyPerRequest[k], res.EnergyPerRequest[k].Mean, res.EnergyPerRequest[k].HalfW)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrun:", err)
	os.Exit(1)
}
