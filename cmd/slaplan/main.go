// Command slaplan is the capacity-planning tool built on the paper's C4
// algorithm: given a JSON cluster description with per-class SLAs, it finds
// the cheapest server allocation (and DVFS speeds) that guarantees every
// class's SLA, and compares it with the uniform and proportional sizing
// baselines.
//
// Usage:
//
//	slaplan -config cluster.json [-baselines] [-max-servers 64]
//	        [-availability 0.95]     # size so SLAs hold at this availability
//	        [-progress]              # phase/timing heartbeat on stderr
//	        [-metrics-out m.json]    # solver metrics (.prom for Prometheus text)
//	        [-http :8080]            # live /metrics and /debug/pprof while solving
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clusterq/internal/cluster"
	"clusterq/internal/core"
	"clusterq/internal/obs"
)

func main() {
	var (
		path       = flag.String("config", "", "JSON cluster config (required)")
		baselines  = flag.Bool("baselines", false, "also size with the uniform and proportional baselines")
		maxServers = flag.Int("max-servers", 64, "server cap per tier")
		avail      = flag.Float64("availability", 0, "plan at this server availability in (0,1] so SLAs survive breakdowns (0 = nominal capacity)")
		progress   = flag.Bool("progress", false, "print solver phase progress to stderr")
		metricsOut = flag.String("metrics-out", "", "write solver metrics to this file (.prom/.txt for Prometheus text, else JSON)")
		httpAddr   = flag.String("http", "", "serve /metrics, /metrics.json and /debug/pprof on this address while solving")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		fatal(err)
	}
	c, err := cluster.ParseConfig(data)
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	if *httpAddr != "" {
		// Phase-timing gauges and solver diagnostics go live as each phase
		// finishes; /debug/pprof profiles slow solves in place.
		addr, stop, err := obs.ListenAndServe(*httpAddr, reg, nil)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "slaplan: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	phase := func(name string) func() {
		start := time.Now()
		if *progress {
			fmt.Fprintf(os.Stderr, "slaplan: %s...\n", name)
		}
		return func() {
			d := time.Since(start)
			reg.Gauge("slaplan_"+name+"_seconds", "wall time of the "+name+" phase").Set(d.Seconds())
			if *progress {
				fmt.Fprintf(os.Stderr, "slaplan: %s done in %s\n", name, d.Round(time.Millisecond))
			}
		}
	}

	finish := phase("mincost")
	sol, err := core.MinimizeCost(c, core.CostOptions{MaxServersPerTier: *maxServers, Availability: *avail})
	finish()
	if err != nil {
		fatal(err)
	}
	if *avail != 0 && *avail < 1 {
		fmt.Printf("== min-cost allocation (C4, planned at availability %.4g) ==\n", *avail)
	} else {
		fmt.Println("== min-cost allocation (C4) ==")
	}
	printAllocation(sol)
	recordSolution(reg, "mincost", sol)

	if *baselines {
		finish = phase("uniform_baseline")
		b, err := core.UniformCostBaseline(c, *maxServers)
		finish()
		fmt.Println("\n== uniform baseline ==")
		if err != nil {
			fmt.Println("infeasible:", err)
		} else {
			printAllocation(b)
			recordSolution(reg, "uniform", b)
		}
		finish = phase("proportional_baseline")
		b, err = core.ProportionalCostBaseline(c, *maxServers)
		finish()
		fmt.Println("\n== proportional baseline ==")
		if err != nil {
			fmt.Println("infeasible:", err)
		} else {
			printAllocation(b)
			recordSolution(reg, "proportional", b)
		}
	}

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fatal(err)
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "slaplan: metrics written to %s\n", *metricsOut)
		}
	}
}

// recordSolution publishes one allocation's outcome and solver diagnostics.
func recordSolution(reg *obs.Registry, name string, sol *core.Solution) {
	reg.Gauge("slaplan_"+name+"_cost", "total provisioning cost per unit time").Set(sol.Objective)
	reg.Gauge("slaplan_"+name+"_power_watts", "average power of the allocation").Set(sol.Metrics.TotalPower)
	reg.Gauge("slaplan_"+name+"_solver_evals", "objective evaluations spent").Set(float64(sol.Result.Evals))
	reg.Gauge("slaplan_"+name+"_solver_iters", "outer solver iterations").Set(float64(sol.Result.Iters))
	reg.Gauge("slaplan_"+name+"_trace_points", "convergence-trace entries recorded").Set(float64(len(sol.Result.Trace)))
}

func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Safety net for early error returns; the success path closes (and
	// checks) explicitly below.
	defer func() { _ = f.Close() }()
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		err = reg.WritePrometheus(f)
	} else {
		err = reg.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

func printAllocation(sol *core.Solution) {
	fmt.Printf("total cost: %.4g per unit time\n", sol.Objective)
	fmt.Printf("average power: %.4g W\n", sol.Metrics.TotalPower)
	for j, t := range sol.Cluster.Tiers {
		fmt.Printf("  tier %-8s servers=%-3d speed=%.3g (utilization %.1f%%)\n",
			t.Name, t.Servers, t.Speed, 100*sol.Metrics.Tiers[j].Utilization)
	}
	reports, err := cluster.CheckSLAs(sol.Cluster, sol.Metrics)
	if err != nil {
		fatal(err)
	}
	for _, r := range reports {
		status := "OK"
		if !r.Satisfied() {
			status = "VIOLATED"
		}
		if r.MeanBound > 0 {
			fmt.Printf("  class %-8s mean delay %.3gs (bound %.3gs) %s\n",
				r.Class, r.MeanDelay, r.MeanBound, status)
		}
		if r.TailBound > 0 {
			fmt.Printf("  class %-8s p%.0f delay %.3gs (bound %.3gs) %s\n",
				r.Class, 100*r.TailPercentile, r.TailDelay, r.TailBound, status)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slaplan:", err)
	os.Exit(1)
}
