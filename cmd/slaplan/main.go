// Command slaplan is the capacity-planning tool built on the paper's C4
// algorithm: given a JSON cluster description with per-class SLAs, it finds
// the cheapest server allocation (and DVFS speeds) that guarantees every
// class's SLA, and compares it with the uniform and proportional sizing
// baselines.
//
// Usage:
//
//	slaplan -config cluster.json [-baselines] [-max-servers 64]
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterq/internal/cluster"
	"clusterq/internal/core"
)

func main() {
	var (
		path       = flag.String("config", "", "JSON cluster config (required)")
		baselines  = flag.Bool("baselines", false, "also size with the uniform and proportional baselines")
		maxServers = flag.Int("max-servers", 64, "server cap per tier")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		fatal(err)
	}
	c, err := cluster.ParseConfig(data)
	if err != nil {
		fatal(err)
	}

	sol, err := core.MinimizeCost(c, core.CostOptions{MaxServersPerTier: *maxServers})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== min-cost allocation (C4) ==")
	printAllocation(sol)

	if *baselines {
		fmt.Println("\n== uniform baseline ==")
		if b, err := core.UniformCostBaseline(c, *maxServers); err != nil {
			fmt.Println("infeasible:", err)
		} else {
			printAllocation(b)
		}
		fmt.Println("\n== proportional baseline ==")
		if b, err := core.ProportionalCostBaseline(c, *maxServers); err != nil {
			fmt.Println("infeasible:", err)
		} else {
			printAllocation(b)
		}
	}
}

func printAllocation(sol *core.Solution) {
	fmt.Printf("total cost: %.4g per unit time\n", sol.Objective)
	fmt.Printf("average power: %.4g W\n", sol.Metrics.TotalPower)
	for j, t := range sol.Cluster.Tiers {
		fmt.Printf("  tier %-8s servers=%-3d speed=%.3g (utilization %.1f%%)\n",
			t.Name, t.Servers, t.Speed, 100*sol.Metrics.Tiers[j].Utilization)
	}
	reports, err := cluster.CheckSLAs(sol.Cluster, sol.Metrics)
	if err != nil {
		fatal(err)
	}
	for _, r := range reports {
		status := "OK"
		if !r.Satisfied() {
			status = "VIOLATED"
		}
		if r.MeanBound > 0 {
			fmt.Printf("  class %-8s mean delay %.3gs (bound %.3gs) %s\n",
				r.Class, r.MeanDelay, r.MeanBound, status)
		}
		if r.TailBound > 0 {
			fmt.Printf("  class %-8s p%.0f delay %.3gs (bound %.3gs) %s\n",
				r.Class, 100*r.TailPercentile, r.TailDelay, r.TailBound, status)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slaplan:", err)
	os.Exit(1)
}
