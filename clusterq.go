// Package clusterq reproduces "Power and Performance Management in
// Priority-Type Cluster Computing Systems" (Kaiqi Xiong, IPDPS 2011): an
// analytical model of multi-tier clusters serving multiple priority classes
// of customers, power/performance optimizers over DVFS speeds and server
// counts, and a discrete-event simulator that validates the model.
//
// This package is the supported facade: it re-exports the model types, the
// paper's optimization problems (plus the extensions: dual decomposition,
// percentile bounds, TCO, splitting, fork-join), and the simulator, so
// downstream users program against one import. The implementation lives in internal/*
// (queueing theory, power models, optimization toolkit, simulator,
// experiment harness); see DESIGN.md for the map.
//
// # Quick start
//
//	c := clusterq.Enterprise3Tier(1.0)       // canonical 3-tier scenario
//	m, _ := clusterq.Evaluate(c)             // analytical delays & power
//	sol, _ := clusterq.MinimizeEnergy(c, clusterq.EnergyOptions{MaxWeightedDelay: 3})
//	res, _ := clusterq.Simulate(sol.Cluster, clusterq.SimOptions{Horizon: 20000})
//
// See examples/ for runnable programs and cmd/ for the CLI tools.
package clusterq

import (
	"clusterq/internal/cluster"
	"clusterq/internal/control"
	"clusterq/internal/core"
	"clusterq/internal/obs"
	"clusterq/internal/obs/trace"
	"clusterq/internal/obs/window"
	"clusterq/internal/opt"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

// Model types.
type (
	// Cluster is the full system model: tiers, classes, routes.
	Cluster = cluster.Cluster
	// Tier is one stage of the application: a pool of DVFS servers.
	Tier = cluster.Tier
	// Class is one priority class of customers with its SLA.
	Class = cluster.Class
	// SLA captures per-class delay guarantees and pricing.
	SLA = cluster.SLA
	// Metrics is the analytical evaluation output (delays, power, energy).
	Metrics = cluster.Metrics
	// SLAReport records per-class SLA compliance.
	SLAReport = cluster.SLAReport
	// Demand is the work one class brings to one tier.
	Demand = queueing.Demand
	// ClassRouting is a probabilistic (Markov) routing chain for a class:
	// retries, branches, loops. Assign via Cluster.Routing.
	ClassRouting = queueing.ClassRouting
	// Discipline selects FCFS, NonPreemptive or PreemptiveResume.
	Discipline = queueing.Discipline
	// PowerModel maps server speed to power draw.
	PowerModel = power.Model
	// PowerLaw is the κ·s^γ DVFS power model.
	PowerLaw = power.PowerLaw
)

// Scheduling disciplines.
const (
	FCFS             = queueing.FCFS
	NonPreemptive    = queueing.NonPreemptive
	PreemptiveResume = queueing.PreemptiveResume
)

// Solver types.
type (
	// Solution is the outcome of any optimizer.
	Solution = core.Solution
	// DelayOptions configures MinimizeDelay (problem C2).
	DelayOptions = core.DelayOptions
	// EnergyOptions configures MinimizeEnergy/MinimizeEnergyPerClass (C3).
	EnergyOptions = core.EnergyOptions
	// CostOptions configures MinimizeCost (C4).
	CostOptions = core.CostOptions
	// TailOptions configures MinimizeEnergyTail (C3 with percentile SLAs).
	TailOptions = core.TailOptions
	// TailBound is one class's percentile delay requirement.
	TailBound = core.TailBound
)

// Simulation types.
type (
	// SimOptions configures the discrete-event simulator.
	SimOptions = sim.Options
	// SimResult is the aggregated simulation output.
	SimResult = sim.Result
	// Profile is a time-varying arrival-rate function (dynamic extension).
	Profile = sim.Profile
	// Controller is a runtime DVFS policy (dynamic extension).
	Controller = sim.Controller
	// UtilizationPolicy is the reactive utilization-target DVFS controller.
	UtilizationPolicy = sim.UtilizationPolicy
	// SleepConfig enables the instant-off sleep policy on a tier.
	SleepConfig = sim.SleepConfig
	// FailureConfig enables breakdown/repair injection on a tier
	// (SimOptions.Failures; see DESIGN.md "Failure model").
	FailureConfig = sim.FailureConfig
	// DeadlineConfig gives a class per-attempt deadlines with
	// retry-with-backoff or abandonment (SimOptions.Deadlines).
	DeadlineConfig = sim.DeadlineConfig
	// SheddingConfig enables priority-aware admission control
	// (SimOptions.Shedding).
	SheddingConfig = sim.SheddingConfig
	// Schedule is a piecewise-constant multi-period rate profile
	// (staircases, business-hours patterns); build with NewSchedule.
	Schedule = sim.Schedule
	// PlanController re-plans the whole cluster once per control epoch
	// via SimOptions.PlanController (see DESIGN.md "Online control").
	PlanController = sim.PlanController
	// PlanObservation is the epoch snapshot handed to a PlanController:
	// per-tier observations plus windowed per-class rate estimates.
	PlanObservation = sim.PlanObservation
	// PlanDecision is a plan-level retune order (per-tier speeds and
	// effective server counts); the zero value holds every knob.
	PlanDecision = sim.PlanDecision
)

// ZeroWarmup requests a simulation with no warmup discard (an explicit
// SimOptions.Warmup of 0 still means "use the default"; see sim.ZeroWarmup).
const ZeroWarmup = sim.ZeroWarmup

// Observability types (see the "Observability" section in README.md).
type (
	// SimProbe attaches periodic time-series sampling and event counters
	// to a simulation via SimOptions.Probe.
	SimProbe = sim.Probe
	// Timeline is a sampled multi-series time series (queue lengths,
	// utilization, power, in-flight counts) recorded by a SimProbe.
	Timeline = obs.Timeline
	// MetricRegistry collects named counters, gauges and histograms and
	// exposes them as JSON or Prometheus text.
	MetricRegistry = obs.Registry
	// MetricSnapshot is one metric's point-in-time value as exposed by
	// MetricRegistry.Snapshot and WriteJSON.
	MetricSnapshot = obs.Snapshot
	// SolverTraceEntry is one point of an optimizer's convergence trace
	// (Solution.Result.Trace).
	SolverTraceEntry = opt.TraceEntry
	// FlightRecorder is the fixed-capacity ring-buffer recorder of typed
	// lifecycle events, attached via SimOptions.Recorder; it assembles
	// per-job Spans and exports Chrome trace-event JSON.
	FlightRecorder = trace.Recorder
	// TraceEvent is one recorded lifecycle event (arrival, service start,
	// preempt, ...) in the FlightRecorder's ring.
	TraceEvent = trace.Event
	// Span is one job's assembled lifecycle: queue/service/preempted/backoff
	// components summing exactly to the sojourn.
	Span = trace.Span
	// SpanBreakdown aggregates closed spans per class (counts and summed
	// components).
	SpanBreakdown = trace.Breakdown
	// WindowConfig parameterizes the sliding-window estimators.
	WindowConfig = window.Config
	// WindowSet is the bank of streaming sliding-window sensors (per-class
	// arrival rate, mean and tail sojourn, per-tier utilization) attached
	// via SimOptions.Windows.
	WindowSet = window.Set
	// WindowClassSensor is one class's windowed readings.
	WindowClassSensor = window.ClassSensor
)

// Observability constructors.
var (
	// NewMetricRegistry creates an empty metric registry.
	NewMetricRegistry = obs.NewRegistry
	// NewTimeline creates a standalone timeline with the given series.
	NewTimeline = obs.NewTimeline
	// NewFlightRecorder creates a flight recorder with the given event
	// capacity (0 = default).
	NewFlightRecorder = trace.NewRecorder
	// NewWindowSet builds sliding-window sensors for a class/tier count.
	NewWindowSet = window.NewSet
	// ServeMetrics builds the live exposition mux (/metrics, /metrics.json,
	// /trace, /debug/pprof) over a registry and recorder, either nilable.
	ServeMetrics = obs.Mux
	// ListenAndServeMetrics binds an address and serves ServeMetrics on it
	// in the background, returning the bound address and a stop function.
	ListenAndServeMetrics = obs.ListenAndServe
)

// Time-varying arrival profile constructors (dynamic extension).
var (
	// NewSinusoid builds a smooth diurnal profile.
	NewSinusoid = sim.NewSinusoid
	// NewSquareWave builds a day/night step profile.
	NewSquareWave = sim.NewSquareWave
	// NewSchedule builds a validated piecewise-constant rate schedule.
	NewSchedule = sim.NewSchedule
)

// ServiceDist describes a service- or setup-time distribution through its
// moments (used e.g. by SleepConfig.Setup).
type ServiceDist = queueing.ServiceDist

// Distribution constructors for setup times and custom service shapes.
var (
	// ExpDist returns an exponential distribution with the given mean.
	ExpDist = queueing.NewExponential
	// DetDist returns a deterministic (constant) distribution.
	DetDist = queueing.NewDeterministic
	// ErlangDist returns an Erlang-k distribution with the given mean.
	ErlangDist = queueing.NewErlang
)

// NewPowerLaw returns the standard DVFS power model P = idle + κ·sᵞ.
func NewPowerLaw(idle, kappa, gamma float64) (PowerLaw, error) {
	return power.NewPowerLaw(idle, kappa, gamma)
}

// Evaluate computes the analytical metrics of a cluster (the paper's C1:
// per-class average end-to-end delay and average energy consumption).
func Evaluate(c *Cluster) (*Metrics, error) { return cluster.Evaluate(c) }

// CheckSLAs evaluates every class's SLA against the analytical model.
func CheckSLAs(c *Cluster, m *Metrics) ([]SLAReport, error) { return cluster.CheckSLAs(c, m) }

// DelayQuantile approximates the p-quantile of class k's end-to-end delay.
func DelayQuantile(c *Cluster, m *Metrics, k int, p float64) (float64, error) {
	return cluster.DelayQuantile(c, m, k, p)
}

// TotalCost returns the provisioning cost Σ servers × price.
func TotalCost(c *Cluster) float64 { return cluster.TotalCost(c) }

// MinimizeDelay solves problem C2: minimize average end-to-end delay subject
// to an average energy (power) budget.
func MinimizeDelay(c *Cluster, o DelayOptions) (*Solution, error) {
	return core.MinimizeDelay(c, o)
}

// MinimizeEnergy solves problem C3a: minimize average power subject to a
// bound on the aggregate average end-to-end delay.
func MinimizeEnergy(c *Cluster, o EnergyOptions) (*Solution, error) {
	return core.MinimizeEnergy(c, o)
}

// MinimizeEnergyPerClass solves problem C3b: minimize average power subject
// to per-class delay bounds.
func MinimizeEnergyPerClass(c *Cluster, o EnergyOptions) (*Solution, error) {
	return core.MinimizeEnergyPerClass(c, o)
}

// MinimizeCost solves problem C4: the cheapest server allocation (and speeds)
// meeting every priority class's SLA.
func MinimizeCost(c *Cluster, o CostOptions) (*Solution, error) {
	return core.MinimizeCost(c, o)
}

// MinimizeEnergyDual solves C3a by Lagrangian dual decomposition, exploiting
// the model's separability across tiers: per-tier golden-section searches
// plus a single multiplier bisection. Exact for the separable model and far
// faster than MinimizeEnergy; prefer it for aggregate bounds.
func MinimizeEnergyDual(c *Cluster, o EnergyOptions) (*Solution, error) {
	return core.MinimizeEnergyDual(c, o)
}

// MinimizeDelayDual is the decomposed counterpart of MinimizeDelay (C2).
func MinimizeDelayDual(c *Cluster, o DelayOptions) (*Solution, error) {
	return core.MinimizeDelayDual(c, o)
}

// MinimizeEnergyTail is the percentile flavour of C3: minimize average power
// subject to per-class TAIL delay guarantees P(D_k ≤ x_k) ≥ γ_k.
func MinimizeEnergyTail(c *Cluster, o TailOptions) (*Solution, error) {
	return core.MinimizeEnergyTail(c, o)
}

// ForkJoinResponse returns the Nelson–Tantawi approximation of the mean
// response time of a k-node fork-join job (exact for k ≤ 2); see
// SimulateForkJoin for the simulation counterpart.
func ForkJoinResponse(k int, lambda, mu float64) (float64, error) {
	return queueing.ForkJoinNelsonTantawi(k, lambda, mu)
}

// SimulateForkJoin measures a k-queue fork-join system by simulation.
var SimulateForkJoin = sim.SimulateForkJoin

// OptimalSplit returns the delay-minimizing split of Poisson rate λ across
// parallel M/M/1 pools (the dispatcher problem), via the square-root KKT
// waterfilling rule, together with the resulting mean delay.
func OptimalSplit(lambda float64, mus []float64) (x []float64, delay float64, err error) {
	return queueing.OptimalSplit(lambda, mus)
}

// Baseline allocators for comparisons.
var (
	// UniformDelayBaseline spends an energy budget with one common speed knob.
	UniformDelayBaseline = core.UniformDelayBaseline
	// UniformEnergyBaseline meets a delay bound with one common speed knob.
	UniformEnergyBaseline = core.UniformEnergyBaseline
	// UniformCostBaseline sizes all tiers with the same server count.
	UniformCostBaseline = core.UniformCostBaseline
	// ProportionalCostBaseline sizes tiers proportionally to their load.
	ProportionalCostBaseline = core.ProportionalCostBaseline
)

// Simulate runs the discrete-event simulator on the cluster (the paper's C5
// validation path) and aggregates replications into confidence intervals.
func Simulate(c *Cluster, o SimOptions) (*SimResult, error) { return sim.Run(c, o) }

// Online control (see DESIGN.md "Online control"): the model-driven
// autoscaler re-estimates per-class arrival rates from window sensors each
// control epoch and re-runs the paper's solvers at the live estimates.
type (
	// Autoscaler is the model-driven PlanController.
	Autoscaler = control.Controller
	// AutoscalerConfig parameterizes the autoscaler (objective, smoothing,
	// deadband, safety margin, solver options).
	AutoscalerConfig = control.Config
	// AutoscalerObjective selects which problem the autoscaler re-solves:
	// ObjectiveEnergySLA (C3b), ObjectiveEnergyAggregate (C3a),
	// ObjectiveDelayBudget (C2), or ObjectiveCostServers (C4).
	AutoscalerObjective = control.Objective
	// AutoscalerStats counts the autoscaler's solves, deadband holds, and
	// infeasible-solve fallbacks.
	AutoscalerStats = control.Stats
)

// Autoscaler objectives.
const (
	ObjectiveEnergySLA       = control.EnergySLA
	ObjectiveEnergyAggregate = control.EnergyAggregate
	ObjectiveDelayBudget     = control.DelayBudget
	ObjectiveCostServers     = control.CostServers
)

// NewAutoscaler validates the config against the cluster and returns the
// model-driven controller; attach it via SimOptions.PlanController with a
// WindowSet in SimOptions.Windows and a positive SimOptions.ControlPeriod.
func NewAutoscaler(c *Cluster, cfg AutoscalerConfig) (*Autoscaler, error) {
	return control.New(c, cfg)
}

// Scenario constructors.
var (
	// Enterprise3Tier builds the canonical web→app→db scenario with
	// gold/silver/bronze classes; the argument scales the load.
	Enterprise3Tier = workload.Enterprise3Tier
	// Scalable builds a symmetric j-tier, k-class cluster.
	Scalable = workload.Scalable
	// ScaleArrivals multiplies every class's arrival rate.
	ScaleArrivals = workload.ScaleArrivals
	// CapacityFraction rescales arrivals to a bottleneck utilization.
	CapacityFraction = workload.CapacityFraction
	// DiurnalProfiles builds per-class sinusoidal profiles around a
	// scenario's nominal rates (transient control scenarios).
	DiurnalProfiles = workload.DiurnalProfiles
	// FlashCrowdProfiles builds per-class square-wave spike profiles.
	FlashCrowdProfiles = workload.FlashCrowdProfiles
	// StaircaseProfiles builds per-class cycling staircase profiles.
	StaircaseProfiles = workload.StaircaseProfiles
	// PeakFactor is the peak-to-nominal ratio of a profile set — what an
	// honest peak-provisioned static baseline is solved at.
	PeakFactor = workload.PeakFactor
)

// ParseConfig builds a cluster from a JSON description (see
// cluster.Config for the schema; cmd/slaplan and cmd/simrun consume it).
func ParseConfig(data []byte) (*Cluster, error) { return cluster.ParseConfig(data) }
